"""Ablation A1: dense-tile drain via the active-position array.

Section 4.2's dense tile keeps an ``apos`` array of touched positions so
the drain iterates only the nonzeros, not the whole ``T_L x T_R`` area.
This ablation measures the apos drain against the full-tile scan across
output densities: at low tile occupancy the apos drain wins by orders of
magnitude; as occupancy approaches 1 the two converge (the scan is even
slightly cheaper since it avoids the gather).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reporting import render_table
from repro.core.accumulators import DenseTileAccumulator

TILE = 512
OCCUPANCIES = [1e-4, 1e-3, 1e-2, 1e-1, 0.5]


def filled_tile(occupancy: float, seed: int = 3) -> DenseTileAccumulator:
    rng = np.random.default_rng(seed)
    acc = DenseTileAccumulator(TILE, TILE)
    n = max(1, int(occupancy * TILE * TILE))
    positions = rng.choice(TILE * TILE, size=n, replace=False)
    acc.update_batch(positions, rng.random(n))
    return acc


def time_drain(acc: DenseTileAccumulator, full_scan: bool, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        if full_scan:
            acc.drain_full_scan()
        else:
            acc.drain()
        best = min(best, time.perf_counter() - t0)
    return best


def build_rows():
    rows = []
    for occ in OCCUPANCIES:
        acc = filled_tile(occ)
        apos_s = time_drain(acc, full_scan=False)
        scan_s = time_drain(acc, full_scan=True)
        rows.append([occ, acc.nnz, apos_s * 1e3, scan_s * 1e3, scan_s / apos_s])
    return rows


def main():
    print("Ablation A1 — dense-tile drain: apos walk vs full-tile scan "
          f"(tile {TILE}x{TILE})")
    print(render_table(
        ["occupancy", "nnz", "apos (ms)", "scan (ms)", "scan/apos"],
        build_rows(),
    ))
    print("\nthe apos drain's cost tracks the nonzero count; the scan's "
          "cost tracks the tile area — the gap IS the design rationale.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_apos_wins_when_sparse():
    acc = filled_tile(1e-4)
    apos_s = time_drain(acc, full_scan=False)
    scan_s = time_drain(acc, full_scan=True)
    assert scan_s > 5 * apos_s


def test_drains_agree():
    acc = filled_tile(1e-2)
    p1, v1 = acc.drain()
    p2, v2 = acc.drain_full_scan()
    assert dict(zip(p1.tolist(), v1.tolist())) == dict(zip(p2.tolist(), v2.tolist()))


@pytest.mark.parametrize("occ", [1e-3, 1e-1])
def test_apos_drain_speed(benchmark, occ):
    acc = filled_tile(occ)
    benchmark(acc.drain)


@pytest.mark.parametrize("occ", [1e-3])
def test_scan_drain_speed(benchmark, occ):
    acc = filled_tile(occ)
    benchmark(acc.drain_full_scan)


if __name__ == "__main__":
    main()
