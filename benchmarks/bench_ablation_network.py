"""Ablation A5: tensor-network contraction ordering (the extension).

The paper's future-work/related-work direction (CoNST, SparseLNR —
Section 7.1) is contracting *networks* of sparse tensors, where the
binarization order determines the intermediate sizes.  This repository's
:func:`repro.einsum` binarizes networks greedily using the paper's own
Section 5.1 output-density model as the cost oracle.

This ablation builds a 3-tensor chain whose left-to-right evaluation
materializes a large intermediate, and measures greedy vs left-to-right
ordering — the model earning its keep outside the single-contraction
setting.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import einsum, contraction_path
from repro.analysis.reporting import render_table
from repro.data.random_tensors import random_coo


def chain_operands(seed: int = 5):
    """A(i,j) B(j,k) C(k,l): A x B has a large dense-ish intermediate,
    B x C a small one — ordering matters."""
    a = random_coo((2000, 600), nnz=24_000, seed=seed)
    b = random_coo((600, 500), nnz=15_000, seed=seed + 1)
    c = random_coo((500, 40), nnz=1_000, seed=seed + 2)
    return a, b, c


def time_order(optimize: str, repeats: int = 2) -> float:
    a, b, c = chain_operands()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        einsum("ij,jk,kl->il", a, b, c, optimize=optimize)
        best = min(best, time.perf_counter() - t0)
    return best


def main():
    a, b, c = chain_operands()
    path = contraction_path("ij,jk,kl->il", [a, b, c])
    greedy_s = time_order("greedy")
    left_s = time_order("left")
    print("Ablation A5 — tensor-network contraction ordering")
    print(render_table(
        ["ordering", "seconds"],
        [["greedy (model-scored)", greedy_s], ["left-to-right", left_s]],
    ))
    print(f"\ngreedy path: {path} "
          "(operands indexed into the shrinking list; intermediates "
          "append at the end)")
    print(f"ordering speedup: {left_s / greedy_s:.2f}x — the Section 5.1 "
          "density model steering the binarization.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_orders_agree_numerically():
    a, b, c = chain_operands()
    g = einsum("ij,jk,kl->il", a, b, c, optimize="greedy")
    l = einsum("ij,jk,kl->il", a, b, c, optimize="left")
    assert g.allclose(l)


def test_greedy_contracts_small_pair_first():
    a, b, c = chain_operands()
    path = contraction_path("ij,jk,kl->il", [a, b, c])
    # B x C (positions 1, 2) has the smaller predicted intermediate.
    assert path[0] == (1, 2)


def test_greedy_not_slower():
    greedy_s = time_order("greedy")
    left_s = time_order("left")
    assert greedy_s <= left_s * 1.15


def test_network_matches_dense():
    a, b, c = chain_operands()
    out = einsum("ij,jk,kl->il", a, b, c)
    expected = a.to_dense() @ b.to_dense() @ c.to_dense()
    np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-8)


@pytest.mark.parametrize("optimize", ["greedy", "left"])
def test_ordering_time(benchmark, optimize):
    benchmark.pedantic(lambda: time_order(optimize, repeats=1),
                       rounds=2, iterations=1)


if __name__ == "__main__":
    main()
