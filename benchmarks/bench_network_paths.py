"""Network path choice: left-to-right vs greedy vs DP vs sparsity-aware.

Kanakagiri & Solomonik (arXiv:2307.05740) show that for sparse tensor
networks the *contraction path* — not the per-pair schedule — dominates
cost.  This harness puts the :mod:`repro.network` optimizers side by
side on two workload families:

* quantum-chemistry multi-term expressions (three DLPNO three-center
  tensors contracted to a three-index result: the ``T2``-amplitude
  shape of expressions downstream of the paper's Section 6.1 pairs),
  where the dense-ish ``vv`` factor makes the left-to-right path
  materialize a huge four-index intermediate; and
* FROSTT chains (a scaled FROSTT tensor times a tall factor matrix
  times a small projection — the MTTKRP-style shape), where the factor
  pair should contract first.

For each fixture and optimizer the table reports the plan's modeled
cost and predicted peak intermediate, and (outside ``--quick``) the
measured wall-clock of executing the plan through the network executor.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np
import pytest

from common import effective_repeats, quick_mode

from repro.analysis.reporting import render_table
from repro.data.frostt import generate_frostt
from repro.data.quantum import MOLECULES, generate_te_tensor
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.network import NetworkExecutor, plan_network

OPTIMIZERS = ["left", "greedy", "dp", "sparsity"]


def qc_three_term(molecule: str, seed: int = 11):
    """TE_ov(i,m,k) x TE_vv(m,n,q) x TE_ov(j,n,q) -> (i,j,k).

    Left-to-right contracts the ``ov`` and ``vv`` tensors first,
    materializing a four-index ``(i,n,q,k)`` intermediate at the
    ``vv`` tensor's high density; the good path contracts the two
    ``q``-sharing operands first into a tiny ``(m,j)`` factor.
    """
    spec = MOLECULES[molecule]
    t_ov1 = generate_te_tensor("ov", spec, seed=seed)
    t_vv = generate_te_tensor("vv", spec, seed=seed + 1)
    t_ov2 = generate_te_tensor("ov", spec, seed=seed + 2)
    return f"qc-{molecule}-3term", "imk,mnq,jnq->ijk", [t_ov1, t_vv, t_ov2]


def frostt_chain(name: str, mode: int, inner: int, out: int, seed: int = 23):
    """FROSTT tensor x factor matrix x projection, chained on one mode."""
    tensor = generate_frostt(name, scale=0.05, seed=seed, nnz_target=30_000)
    subs_t = "abcd"[: tensor.ndim]
    ch = subs_t[mode]
    factor = random_coo(
        (tensor.shape[mode], inner), nnz=4 * inner, seed=seed + 1
    )
    proj = random_coo((inner, out), nnz=2 * out, seed=seed + 2)
    kept = "".join(c for c in subs_t if c != ch)
    subscripts = f"{subs_t},{ch}m,mn->{kept}n"
    return f"frostt-{name}-chain", subscripts, [tensor, factor, proj]


def fixtures(seed: int = 7):
    return [
        qc_three_term("caffeine", seed=seed),
        qc_three_term("guanine", seed=seed + 50),
        frostt_chain("uber", mode=3, inner=400, out=5, seed=seed + 100),
        frostt_chain("nips", mode=2, inner=300, out=4, seed=seed + 200),
    ]


def measure(subscripts: str, operands, optimizer: str, repeats: int) -> float:
    """Best wall-clock over ``repeats`` executions, cold executor."""
    executor = NetworkExecutor(machine=DESKTOP)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        executor.contract(subscripts, *operands, optimizer=optimizer)
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="modeled costs only; skip measured execution")
    args = parser.parse_args(argv if argv is not None else [])
    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    quick = quick_mode()
    print("Network contraction-path choice (desktop model)")
    rows = []
    for name, subscripts, operands in fixtures():
        plans = {
            opt: plan_network(
                subscripts, operands, machine=DESKTOP, optimizer=opt
            )
            for opt in OPTIMIZERS
        }
        measured = {
            opt: (
                float("nan") if quick
                else measure(subscripts, operands, opt,
                             effective_repeats(3))
            )
            for opt in OPTIMIZERS
        }
        for opt in OPTIMIZERS:
            p = plans[opt]
            ratio_model = plans["left"].est_total_cost / p.est_total_cost
            row = [
                name, opt, str(p.path),
                f"{p.est_total_cost:.3e}", f"{p.est_peak_nnz:.3g}",
                f"{ratio_model:.2f}x",
            ]
            if not quick:
                ratio_meas = measured["left"] / measured[opt]
                row += [f"{measured[opt]:.4f}", f"{ratio_meas:.2f}x"]
            rows.append(row)
    header = ["fixture", "optimizer", "path", "modeled s",
              "peak nnz", "model vs left"]
    if not quick:
        header += ["measured s", "meas vs left"]
    print(render_table(header, rows))
    print(
        "\nmodeled costs run each planned step through the Section 5.3 "
        "access-cost closed forms; 'vs left' > 1 means the optimizer "
        "beats left-to-right evaluation."
    )
    return 0


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_optimizers_agree_numerically():
    name, subscripts, operands = frostt_chain(
        "uber", mode=3, inner=50, out=4, seed=3
    )
    dense = [t.to_dense() for t in operands]
    expected = np.einsum(subscripts, *dense)
    for opt in OPTIMIZERS:
        executor = NetworkExecutor(machine=DESKTOP)
        out = executor.contract(subscripts, *operands, optimizer=opt)
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-8)


def test_quantum_path_beats_left_modeled():
    # The acceptance fixture: on the caffeine three-term expression the
    # DP and sparsity-aware paths must be at least 2x cheaper than
    # left-to-right under the machine cost model.
    _, subscripts, operands = qc_three_term("caffeine")
    left = plan_network(subscripts, operands, machine=DESKTOP,
                        optimizer="left")
    for opt in ("dp", "sparsity"):
        plan = plan_network(subscripts, operands, machine=DESKTOP,
                            optimizer=opt)
        assert plan.est_total_cost * 2 <= left.est_total_cost, (
            opt, plan.est_total_cost, left.est_total_cost
        )


def test_quantum_path_beats_left_measured():
    if quick_mode():
        pytest.skip("quick mode compares modeled costs only")
    _, subscripts, operands = qc_three_term("caffeine")
    left_s = measure(subscripts, operands, "left", repeats=2)
    dp_s = measure(subscripts, operands, "dp", repeats=2)
    assert dp_s * 2 <= left_s, (dp_s, left_s)


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_path_time(benchmark, optimizer):
    _, subscripts, operands = qc_three_term("caffeine")
    benchmark.pedantic(
        lambda: measure(subscripts, operands, optimizer, repeats=1),
        rounds=2, iterations=1,
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
