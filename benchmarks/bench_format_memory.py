"""Extension table: storage-format memory across the registry tensors.

COO spends full-width (8-byte) coordinates per mode per nonzero; HiCOO
amortizes block coordinates and stores narrow within-block offsets
(Li et al., SC '18 — the compressed format of the ecosystem the paper's
baselines come from).  This harness tabulates index memory for COO vs
HiCOO at two block sizes across the benchmark tensors, plus the CSF
node counts, quantifying the storage side of the format landscape the
paper's Section 2.2 surveys.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_table
from repro.data.frostt import generate_frostt
from repro.data.quantum import generate_dlpno_operands
from repro.tensors.csf import CSFTensor
from repro.tensors.hicoo import HiCOOTensor

TENSORS = {
    "chicago(s)": lambda: generate_frostt("chicago", scale=0.05, seed=7),
    "uber(s)": lambda: generate_frostt("uber", scale=0.2, seed=7),
    "nips(s)": lambda: generate_frostt("nips", scale=0.15, seed=7),
    "TE_vv(caff)": lambda: generate_dlpno_operands("caffeine", "vvov", seed=11)[0],
    "TE_ov(caff)": lambda: generate_dlpno_operands("caffeine", "ovov", seed=11)[0],
}


def build_rows():
    rows = []
    for name, loader in TENSORS.items():
        t = loader().sum_duplicates()
        coo_bytes = t.ndim * t.nnz * 8
        h4 = HiCOOTensor.from_coo(t, block_bits=4)
        h7 = HiCOOTensor.from_coo(t, block_bits=7)
        csf = CSFTensor.from_coo(t)
        csf_bytes = sum(a.nbytes for a in csf.fids) + sum(
            a.nbytes for a in csf.fptr
        )
        rows.append([
            name,
            t.nnz,
            coo_bytes // 1024,
            h4.index_nbytes // 1024,
            h7.index_nbytes // 1024,
            csf_bytes // 1024,
            f"{h7.compression_ratio():.2f}x",
        ])
    return rows


def main():
    print("Format memory — index bytes (KiB) per storage format")
    print(render_table(
        ["tensor", "nnz", "COO", "HiCOO b=4", "HiCOO b=7", "CSF",
         "HiCOO(b=7) ratio"],
        build_rows(),
    ))
    print("\nthe block size is the knob: small blocks on scattered data "
          "(nips at b=4) cost more than COO — every nonzero drags a "
          "block header; once blocks are coarse enough to be shared "
          "(b=7) the 1-byte offsets win ~8x on 4-mode tensors.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_dlpno_blocks_compress_well():
    t = generate_dlpno_operands("caffeine", "vvov", seed=11)[0].sum_duplicates()
    h = HiCOOTensor.from_coo(t, block_bits=7)
    assert h.compression_ratio() > 2.0


def test_roundtrips_on_registry_tensors():
    for name, loader in TENSORS.items():
        t = loader().sum_duplicates()
        h = HiCOOTensor.from_coo(t, block_bits=5)
        assert h.to_coo().allclose(t), name


def test_conversion_speed(benchmark):
    t = generate_frostt("chicago", scale=0.05, seed=7)
    benchmark.pedantic(
        lambda: HiCOOTensor.from_coo(t, block_bits=7), rounds=3, iterations=1
    )


if __name__ == "__main__":
    main()
