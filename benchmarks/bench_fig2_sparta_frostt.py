"""Figure 2a/2b reproduction: FaSTCC speedup over Sparta on FROSTT.

For each FROSTT contraction this harness measures Sparta (the CM
baseline) and FaSTCC (model-chosen tile and best-swept tile), then
replays both at each platform's thread count through the scheduling
simulator (8 threads = desktop, Figure 2a; 64 threads = server, Figure
2b).  Printed speedups are Sparta time / FaSTCC time, the paper's
y-axis; the paper's qualitative claims to check are:

* FaSTCC wins clearly on the chicago and NIPS contractions;
* vast and uber show little or no improvement — their outputs are tiny
  and dense, so hash-table construction dominates (Section 6.4);
* the model-chosen tile tracks the best tile closely.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_table
from repro.errors import WorkspaceLimitError

from common import (
    FROSTT_ORDER,
    load_operands,
    simulate_sparta_parallel,
    time_fastcc,
    time_method,
    tile_candidates,
    simulated_parallel_time,
)

THREAD_COUNTS = {"desktop(8t)": 8, "server(64t)": 64}


def swept_runs(case_name: str):
    """All tile-sweep runs for a case (measured once, reused per thread
    count)."""
    spec, _, _ = load_operands(case_name)
    runs = []
    for tile in tile_candidates(spec, span=3):
        try:
            runs.append(time_fastcc(case_name, tile_size=tile))
        except WorkspaceLimitError:
            continue
    return runs


def best_tile_run(case_name: str, n_threads: int = 1):
    """The best swept tile *for a given thread count* — the paper's
    "best tile size" bars are per platform, so the sweep is judged by
    the simulated time at that platform's thread count."""
    runs = swept_runs(case_name)
    return min(runs, key=lambda r: simulated_parallel_time(r, n_threads))


def build_rows(cases=None, repeats=1):
    rows = []
    for name in cases or FROSTT_ORDER:
        sparta_s = time_method(name, "sparta", repeats=repeats)
        model_run = time_fastcc(name, repeats=repeats)
        sweep = swept_runs(name)
        row = [name]
        for label, k in THREAD_COUNTS.items():
            sparta_k = simulate_sparta_parallel(name, sparta_s, k)
            model_k = simulated_parallel_time(model_run, k)
            best_k = min(simulated_parallel_time(r, k) for r in sweep)
            row += [sparta_k / model_k, sparta_k / best_k]
        rows.append(row)
    return rows


def main():
    rows = build_rows(repeats=2)
    print("Figure 2a/2b — FaSTCC speedup over Sparta (FROSTT)")
    print(
        render_table(
            ["case",
             "8t model-tile", "8t best-tile",
             "64t model-tile", "64t best-tile"],
            rows,
        )
    )
    wins = sum(1 for r in rows if r[1] > 1.0)
    print(f"\ncases with >1x speedup at 8 threads (model tile): {wins}/{len(rows)}")
    print("expected shape: NIPS wins biggest; vast/uber improve least "
          "(construction-bound, Section 6.4).")

    # Section 6.4's explanation, verified directly: for vast/uber the
    # hash-table construction phase dominates FaSTCC's runtime.
    print("\nFaSTCC phase split (fraction of time in table construction):")
    for name in FROSTT_ORDER:
        run = time_fastcc(name)
        total = sum(run.phase_seconds.values())
        frac = run.phase_seconds.get("build_tables", 0.0) / total if total else 0.0
        print(f"  {name:10s} build_tables: {frac:5.1%}")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_name", ["chic_01", "chic_123", "NIPS_23"])
def test_fastcc_beats_sparta(benchmark, case_name):
    """FaSTCC's kernel must beat Sparta on the contraction-heavy cases
    even single-threaded."""
    sparta_s = time_method(case_name, "sparta")
    run = benchmark(lambda: time_fastcc(case_name))
    assert run.seconds < sparta_s


@pytest.mark.parametrize("case_name", FROSTT_ORDER)
def test_sparta_time(benchmark, case_name):
    if case_name in ("chic_0",):
        pytest.skip("slow under benchmark rounds; measured by main()")
    benchmark.pedantic(
        lambda: time_method(case_name, "sparta"), rounds=1, iterations=1
    )


def test_model_tile_tracks_best():
    """Model-chosen tile within 2.5x of the best swept tile (paper:
    'typically close to the best possible')."""
    for name in ["chic_01", "chic_123", "NIPS_23", "uber_123"]:
        model_run = time_fastcc(name, repeats=2)
        best = best_tile_run(name)
        assert model_run.seconds <= 2.5 * best.seconds + 0.01, name


if __name__ == "__main__":
    main()
