"""Extension figure: accuracy of the Section 5.1 density estimator.

The dense/sparse accumulator decision and the sparse tile size both rest
on the closed-form output-density estimate
``P = 1 - (1 - p_L p_R)^C``, derived under uniformly random nonzeros.
The paper validates the resulting *decisions* (Table 3); this harness
validates the estimator itself:

* on uniform random inputs, estimate vs exact output density across a
  density x C sweep (relative error should be small everywhere);
* on clustered inputs — the assumption deliberately violated — showing
  how far the estimate drifts, bounding when Algorithm 7's decisions
  can be trusted.
"""

from __future__ import annotations

import pytest

from repro.analysis.density import estimate_for_operands, exact_output_density
from repro.analysis.reporting import render_table
from repro.core.plan import ContractionSpec
from repro.data.random_tensors import clustered_coo, random_operand_pair

DENSITIES = [0.005, 0.02, 0.08]
C_EXTENTS = [20, 80, 320]
L = R = 150


def uniform_rows():
    rows = []
    for d in DENSITIES:
        for c in C_EXTENTS:
            left, right = random_operand_pair(
                L, c, R, density_l=d, density_r=d, seed=17
            )
            est = estimate_for_operands(left, right)
            exact = exact_output_density(left, right)
            err = (est - exact) / exact if exact else 0.0
            rows.append([d, c, exact, est, f"{err:+.1%}"])
    return rows


def clustered_row(n_clusters: int, spread: float):
    t = clustered_coo(
        (L, 60), nnz=900, seed=23, n_clusters=n_clusters, spread=spread
    )
    spec = ContractionSpec(t.shape, t.shape, [(1, 1)])
    left = spec.linearize_left(t).sum_duplicates()
    right = spec.linearize_right(t).sum_duplicates()
    est = estimate_for_operands(left, right)
    exact = exact_output_density(left, right)
    return [n_clusters, spread, exact, est,
            f"{(est - exact) / exact:+.1%}" if exact else "n/a"]


def main():
    print("Model accuracy — Section 5.1 estimate vs exact output density")
    print(render_table(
        ["input density", "C", "exact", "estimate", "rel. error"],
        uniform_rows(), title="uniform random inputs (model assumption)",
    ))
    print()
    rows = [clustered_row(nc, sp) for nc, sp in
            [(1, 0.02), (2, 0.02), (4, 0.05), (8, 0.1)]]
    print(render_table(
        ["clusters", "spread", "exact", "estimate", "rel. error"],
        rows, title="clustered inputs (assumption violated)",
    ))
    print("\nuniform inputs: the estimator tracks the truth to a few "
          "percent; clustered inputs: errors grow with concentration — "
          "the regime where Algorithm 7's decisions need a margin.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("c", C_EXTENTS)
def test_uniform_accuracy(density, c):
    left, right = random_operand_pair(
        L, c, R, density_l=density, density_r=density, seed=17
    )
    est = estimate_for_operands(left, right)
    exact = exact_output_density(left, right)
    assert est == pytest.approx(exact, rel=0.3)


def test_clustered_inputs_drift():
    row = clustered_row(1, 0.02)
    exact, est = row[2], row[3]
    # Tight single-cluster structure: exact density concentrates far
    # from the uniform prediction.
    assert abs(est - exact) > 0.05 * max(est, exact)


def test_estimator_speed(benchmark):
    left, right = random_operand_pair(
        L, 320, R, density_l=0.02, density_r=0.02, seed=17
    )
    benchmark(lambda: estimate_for_operands(left, right))


if __name__ == "__main__":
    main()
