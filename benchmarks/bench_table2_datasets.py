"""Table 2 reproduction: FROSTT tensor dimensions and sizes.

Prints the paper's Table 2 rows next to the scaled synthetic stand-ins
this repository generates (DESIGN.md substitution), and validates that
each generator preserves mode count and (where not overridden) density.
"""

from __future__ import annotations

from repro.analysis.reporting import render_table
from repro.data.frostt import FROSTT_SPECS, generate_frostt
from repro.data.registry import FROSTT_CASES


def build_rows():
    rows = []
    # Which scale each tensor is generated at (from the registry cases).
    scales = {"chicago": 0.05, "uber": 0.2, "vast": 0.05, "nips": 0.15}
    targets = {"vast": 30_000}
    for name, spec in FROSTT_SPECS.items():
        t = generate_frostt(
            name, scale=scales[name], seed=7, nnz_target=targets.get(name)
        )
        rows.append(
            [
                name,
                "x".join(str(s) for s in spec.shape),
                spec.nnz,
                f"{spec.density:.3g}",
                "x".join(str(s) for s in t.shape),
                t.nnz,
                f"{t.density:.3g}",
            ]
        )
    return rows


def main():
    print("Table 2 — FROSTT tensors: paper vs scaled synthetic stand-ins")
    print(
        render_table(
            ["tensor", "paper shape", "paper nnz", "paper density",
             "scaled shape", "scaled nnz", "scaled density"],
            build_rows(),
        )
    )
    print(
        "\nvast is generated with an nnz target instead of preserved "
        "density (see DESIGN.md): its contraction character — tiny dense "
        "output, construction-bound — needs nnz >> L*R."
    )


def test_generators_preserve_structure():
    for name, spec in FROSTT_SPECS.items():
        t = generate_frostt(name, scale=0.05, seed=7)
        assert t.ndim == len(spec.shape)
        if name != "vast":
            assert abs(t.density - spec.density) / spec.density < 0.1


def test_registry_has_all_tensors():
    tensors_used = {"chicago", "uber", "vast", "nips"}
    assert len(FROSTT_CASES) == 10
    assert tensors_used == set(FROSTT_SPECS)


if __name__ == "__main__":
    main()
