"""Optimizer pass pipeline: CSE / dead-skip / hoist vs the plain executor.

The :mod:`repro.network.passes` pipeline rewrites network plans with
annotations the executor honors under runtime guards (content-digest
checks, zero-premise re-validation), so results stay bit-identical to
the unoptimized plan.  This harness measures what the annotations buy
on three workload shapes:

* **shared-branch** — a QC-style two-term expression whose branches
  share a factor subnetwork (the same ``A·B`` chain appears under two
  index labelings): the CSE pass annotates the duplicate steps and the
  executor computes the shared intermediates once;
* **repeated-execution** — the same network contracted many times over
  stable operands (an inference-style loop): ``prepare()`` hoists the
  loop-invariant linearizations/tiled tables into pinned runtime cache
  entries and replays the reduced plan;
* **micro-batch** — identical requests sharing one
  :class:`~repro.network.executor.StepResultCache`, the serve-layer
  cross-request CSE path.

Each row compares the no-pass baseline against the pass pipeline and
reports the measured speedup plus the relevant hit-rate counter.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from common import effective_repeats, quick_mode

from repro.analysis.reporting import render_table
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.network import NetworkExecutor, StepResultCache
from repro.tensors.coo import COOTensor


def shared_branch_fixture(n: int = 220, density: float = 0.02, seed: int = 5):
    """Two isomorphic chain branches sharing every operand.

    ``ij,jk,kl`` and ``ab,bc,cd`` are the same ``A·B·C`` subnetwork
    under two labelings; the outer product of the two branch results
    forms the output.  The CSE pass marks the second branch's steps as
    duplicates of the first; the runtime digest guard confirms the
    operands really match before reusing.
    """
    nnz = max(8, int(density * n * n))
    a = random_coo((n, n), nnz=nnz, seed=seed)
    b = random_coo((n, n), nnz=nnz, seed=seed + 1)
    c = random_coo((n, 8), nnz=max(8, 4 * 8), seed=seed + 2)
    return "ij,jk,kl,ab,bc,cd->ilad", [a, b, c, a, b, c]


def dead_branch_fixture(n: int = 200, seed: int = 9):
    """A chain whose middle operand is empty: every downstream step is
    statically zero and the dead pass lets the executor skip it."""
    a = random_coo((n, n), nnz=6 * n, seed=seed)
    empty = COOTensor.empty((n, n))
    c = random_coo((n, n), nnz=6 * n, seed=seed + 1)
    return "ij,jk,kl->il", [a, empty, c]


def repeated_fixture(n: int = 240, seed: int = 13):
    """A three-step chain contracted repeatedly over stable operands."""
    a = random_coo((n, n), nnz=10 * n, seed=seed)
    b = random_coo((n, n), nnz=10 * n, seed=seed + 1)
    c = random_coo((n, n), nnz=10 * n, seed=seed + 2)
    d = random_coo((n, 12), nnz=6 * 12, seed=seed + 3)
    return "ij,jk,kl,lm->im", [a, b, c, d]


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_shared_branch(repeats: int):
    subs, ops = shared_branch_fixture()
    base = NetworkExecutor(machine=DESKTOP, passes=None)
    opt = NetworkExecutor(machine=DESKTOP)
    ref = base.contract(subs, *ops, optimizer="dp")
    out = opt.contract(subs, *ops, optimizer="dp")
    assert np.array_equal(ref.to_dense(), out.to_dense())
    t_base = _best(lambda: base.contract(subs, *ops, optimizer="dp"), repeats)
    t_opt = _best(lambda: opt.contract(subs, *ops, optimizer="dp"), repeats)
    return t_base, t_opt, f"cse hit rate {opt.metrics()['cse_hit_rate']:.0%}"


def bench_dead_branch(repeats: int):
    subs, ops = dead_branch_fixture()
    base = NetworkExecutor(machine=DESKTOP, passes=None)
    opt = NetworkExecutor(machine=DESKTOP)
    ref = base.contract(subs, *ops)
    out = opt.contract(subs, *ops)
    assert np.array_equal(ref.to_dense(), out.to_dense())
    t_base = _best(lambda: base.contract(subs, *ops), repeats)
    t_opt = _best(lambda: opt.contract(subs, *ops), repeats)
    return t_base, t_opt, f"dead skips {opt.metrics()['dead_skips']}"


def bench_repeated(repeats: int, loop: int = 20):
    """Repeated execution under operand-cache pressure.

    Both executors run with a small runtime operand cache and a
    distractor contraction interleaved between iterations (the serving
    mix): the baseline re-linearizes and re-tiles its operands after
    every eviction, while ``prepare()`` pins the hoisted entries so
    they survive the churn.
    """
    subs, ops = repeated_fixture()
    distractor_subs, distractor_ops = repeated_fixture(n=80, seed=41)
    base = NetworkExecutor(machine=DESKTOP, passes=None,
                           operand_cache_size=2)
    opt = NetworkExecutor(machine=DESKTOP, operand_cache_size=2)
    ref = base.contract(subs, *ops)

    def run_base():
        for _ in range(loop):
            base.contract(distractor_subs, *distractor_ops)
            base.contract(subs, *ops)

    t_base = _best(run_base, repeats)
    with opt.prepare(subs, *ops) as prepared:
        out = prepared.execute()
        assert np.array_equal(ref.to_dense(), out.to_dense())

        def run_opt():
            for _ in range(loop):
                opt.contract(distractor_subs, *distractor_ops)
                prepared.execute()

        t_opt = _best(run_opt, repeats)
        note = f"{prepared.tables_built} tables hoisted, {loop} executions"
    return t_base, t_opt, note


def bench_micro_batch(repeats: int, batch: int = 6):
    subs, ops = repeated_fixture(seed=29)
    base = NetworkExecutor(machine=DESKTOP, passes=None)
    opt = NetworkExecutor(machine=DESKTOP)
    ref = base.contract(subs, *ops)

    def run_base():
        for _ in range(batch):
            base.contract(subs, *ops)

    def run_opt():
        cache = StepResultCache()
        for _ in range(batch):
            opt.contract(subs, *ops, cse_cache=cache)
        return cache

    cache = run_opt()
    out = opt.contract(subs, *ops)
    assert np.array_equal(ref.to_dense(), out.to_dense())
    stats = cache.stats()
    t_base = _best(run_base, repeats)
    t_opt = _best(run_opt, repeats)
    note = f"batch cache {stats['hits']} hits / {stats['misses']} misses"
    return t_base, t_opt, note


WORKLOADS = [
    ("shared-branch", bench_shared_branch),
    ("dead-branch", bench_dead_branch),
    ("repeated-execution", bench_repeated),
    ("micro-batch", bench_micro_batch),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="clamp repeats to 1")
    args = parser.parse_args(argv if argv is not None else [])
    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    repeats = effective_repeats(5)
    print("Optimizer pass pipeline vs plain executor (desktop model)")
    rows = []
    for name, fn in WORKLOADS:
        t_base, t_opt, note = fn(repeats)
        rows.append([
            name, f"{t_base:.4f}", f"{t_opt:.4f}",
            f"{t_base / t_opt:.2f}x", note,
        ])
    print(render_table(
        ["workload", "no-pass s", "passes s", "speedup", "notes"], rows
    ))
    print(
        "\nevery optimized result is asserted bit-identical to the "
        "unoptimized plan before timing; speedups come from skipping "
        "digest-confirmed duplicate steps (cse), statically-zero steps "
        "(dead), and re-built tables across executions (hoist/prepare)."
    )
    return 0


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_passes_bit_identical():
    for subs, ops in (shared_branch_fixture(n=60),
                      dead_branch_fixture(n=50),
                      repeated_fixture(n=60)):
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        opt = NetworkExecutor(machine=DESKTOP)
        ref = base.contract(subs, *ops, optimizer="dp")
        out = opt.contract(subs, *ops, optimizer="dp")
        assert np.array_equal(ref.to_dense(), out.to_dense())


def test_shared_branch_cse_hits():
    subs, ops = shared_branch_fixture(n=60)
    opt = NetworkExecutor(machine=DESKTOP)
    opt.contract(subs, *ops, optimizer="dp")
    assert opt.metrics()["cse_hits"] >= 2


def test_micro_batch_cache_hits():
    subs, ops = repeated_fixture(n=60)
    opt = NetworkExecutor(machine=DESKTOP)
    cache = StepResultCache()
    for _ in range(3):
        opt.contract(subs, *ops, cse_cache=cache)
    assert cache.stats()["hits"] > 0


def test_repeated_execution_speedup():
    if quick_mode():
        import pytest

        pytest.skip("quick mode skips measured speedups")
    t_base, t_opt, _ = bench_repeated(repeats=2, loop=10)
    assert t_opt < t_base


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
