"""Ablation A4: how much of FaSTCC's win is loop order vs table design?

The paper attributes FaSTCC's speedups to the tiled-CO loop order and
its cache-resident accumulators, and separately credits Sparta's
chaining tables with cheap insertion (Section 6.4); related work (Feng
et al., Section 7.2) improved Sparta by only changing the hash tables.
This ablation decomposes the two factors by running three kernels on
the same workloads:

* ``sparta``          — CM order, chaining tables (the stock baseline);
* ``sparta_improved`` — CM order, open-addressing tables (Feng et al.);
* ``fastcc``          — tiled CO order, open-addressing tables.

If the loop order is what matters, fastcc >> sparta_improved ~ sparta;
if table design dominates, sparta_improved closes most of the gap.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.reporting import render_table

from common import FROSTT_ORDER, QUANTUM_ORDER, load_operands

CASES = ["chic_123", "uber_02", "NIPS_23", "G-vvoo", "C-vvov"]


def time_kernel(case_name: str, kernel: str, repeats: int = 2) -> float:
    from repro.baselines.sparta import sparta_contract
    from repro.baselines.sparta_improved import sparta_improved_contract
    from repro.core.model import choose_plan
    from repro.core.tiled_co import tiled_co_contract
    from repro.machine.specs import DESKTOP

    spec, left, right = load_operands(case_name)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        if kernel == "sparta":
            sparta_contract(left, right)
        elif kernel == "sparta_improved":
            sparta_improved_contract(left, right)
        else:
            plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP)
            tiled_co_contract(left, right, plan)
        best = min(best, time.perf_counter() - t0)
    return best


def build_rows(repeats: int = 2):
    rows = []
    for name in CASES:
        s = time_kernel(name, "sparta", repeats)
        si = time_kernel(name, "sparta_improved", repeats)
        f = time_kernel(name, "fastcc", repeats)
        rows.append([name, s, si, f, s / si, si / f])
    return rows


def main():
    rows = build_rows()
    print("Ablation A4 — loop order vs table design")
    print(render_table(
        ["case", "sparta (s)", "sparta+OA (s)", "fastcc (s)",
         "tables gain", "order+tiling gain"],
        rows,
    ))
    print("\n'tables gain' = speedup from swapping chaining for open "
          "addressing inside CM; 'order+tiling gain' = the further "
          "speedup from the tiled CO scheme — the paper's contribution.")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_name", ["chic_123", "G-vvoo"])
def test_loop_order_dominates(case_name):
    """The tiled-CO order must contribute more than the table swap on
    contraction-heavy cases — the paper's central claim."""
    si = time_kernel(case_name, "sparta_improved")
    f = time_kernel(case_name, "fastcc")
    s = time_kernel(case_name, "sparta")
    tables_gain = s / si
    order_gain = si / f
    assert order_gain > tables_gain


@pytest.mark.parametrize("kernel", ["sparta", "sparta_improved", "fastcc"])
def test_kernel_times(benchmark, kernel):
    benchmark.pedantic(
        lambda: time_kernel("chic_123", kernel, repeats=1),
        rounds=2, iterations=1,
    )


if __name__ == "__main__":
    main()
