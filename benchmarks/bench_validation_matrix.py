"""Correctness matrix: every kernel against every registry case.

Not a figure from the paper but the table every artifact evaluation
starts with: all contraction methods, all 16 evaluation workloads,
pairwise numerical agreement.  A disagreement anywhere is a bug in one
of the kernels; the matrix printing "ok" across the board is the
license to trust the performance comparisons.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_table
from repro.analysis.verify import cross_validate
from repro.data.registry import all_cases, get_case

from common import FROSTT_ORDER, QUANTUM_ORDER

#: taco/taco_mm are CI-class (quadratic in slices) — run them only on
#: the cases where they finish quickly.
FAST_METHODS = ("fastcc", "sparta", "sparta_improved", "co", "cm")
CI_SAFE_CASES = {"chic_01", "uber_123", "G-ovov", "C-ovov"}


def validate_case(name: str, *, include_ci: bool = False):
    left, right, pairs = get_case(name).load()
    methods = FAST_METHODS + (("taco",) if include_ci else ())
    return cross_validate(left, right, pairs, methods=methods)


def build_rows():
    rows = []
    for name in FROSTT_ORDER + QUANTUM_ORDER:
        report = validate_case(name, include_ci=name in CI_SAFE_CASES)
        status = "ALL AGREE" if report.all_agree else "MISMATCH"
        rows.append([name, len(report.results), status, report.summary()])
    return rows


def main():
    rows = build_rows()
    print("Validation matrix — kernel agreement across the registry")
    for name, n, status, summary in rows:
        print(f"{name:<10} [{n} methods] {status}")
        print(f"           {summary}")
    agree = sum(1 for r in rows if r[2] == "ALL AGREE")
    print(f"\n{agree}/{len(rows)} cases with full agreement")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_name", FROSTT_ORDER + QUANTUM_ORDER)
def test_all_methods_agree(case_name):
    report = validate_case(case_name, include_ci=case_name in CI_SAFE_CASES)
    assert report.all_agree, report.summary()


def test_matrix_speed(benchmark):
    benchmark.pedantic(lambda: validate_case("chic_01"), rounds=1, iterations=1)


if __name__ == "__main__":
    main()
