"""Streaming deltas: incremental tile patching vs. full recompute.

Scenario: a long-lived contraction whose left operand takes a steady
trickle of point mutations — the serving shape the streaming subsystem
(`repro.streaming`) exists for.  Each delta is confined to one row
block, so it touches ~1% of the plan's left tiles; the incremental
engine re-contracts only those tiles against the partner's cached
tables and patches the stored output, while the baseline recomputes
the whole contraction from the mutated tensor.

Two engines are registered on identical operands under the same pinned
plan.  The same canonical delta stream is applied to both — one under
the engine's own staleness pricing (which must choose the incremental
path), one with ``force="full"`` — and after every delta the two
outputs are checked **bit-identical** (same coordinates, same value
bytes), so the speedup is measured between paths that provably agree.

The PASS bar is the repository's acceptance criterion: for deltas
touching at most 1% of the tiles, the incremental path must run at
least 5x faster than full recompute (quick mode included).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import quick_mode  # noqa: E402

from repro.data.random_tensors import random_coo  # noqa: E402
from repro.machine.specs import DESKTOP  # noqa: E402
from repro.streaming import DeltaBatch, IncrementalEngine  # noqa: E402

#: Left rows and the forced tile edge: 8192 / 64 = 128 left tiles, so a
#: one-block delta touches < 1% of them.
LEFT_ROWS = 8192
TILE = 64

#: Contracted extent and output columns.
K, COLS = 64, 256

SPEEDUP_BAR = 5.0


def _delta_for_block(rng, shape, block: int) -> DeltaBatch:
    """A small insert/update/delete batch confined to one row block."""
    base = block * TILE
    rows = base + rng.integers(0, TILE, 6)
    cols = rng.integers(0, shape[1], 6)
    ops = [
        ("insert", (int(rows[i]), int(cols[i])), float(i + 1))
        for i in range(4)
    ] + [
        ("update", (int(rows[4]), int(cols[4])), 2.5),
        ("delete", (int(rows[5]), int(cols[5])), 0.0),
    ]
    return DeltaBatch.from_ops(ops, shape)


def main() -> None:
    deltas = 6 if quick_mode() else 24
    nnz_l = 20_000 if quick_mode() else 60_000
    nnz_r = 8_000

    left = random_coo((LEFT_ROWS, K), nnz=nnz_l, seed=0)
    right = random_coo((K, COLS), nnz=nnz_r, seed=1)

    inc = IncrementalEngine(DESKTOP)
    full = IncrementalEngine(DESKTOP)
    inc.register("s", left, right, [(1, 0)], tile_size=TILE)
    full.register(
        "s", left, right, [(1, 0)], plan=inc._state("s").plan
    )

    rng = np.random.default_rng(7)
    t_inc = t_full = 0.0
    fractions, touched = [], []
    identical = True
    shape = left.shape
    for k in range(deltas):
        delta = _delta_for_block(rng, shape, int(rng.integers(0, 128)))

        t0 = time.perf_counter()
        stats = inc.apply_delta("s", delta)
        t_inc += time.perf_counter() - t0

        t0 = time.perf_counter()
        full.apply_delta("s", delta, force="full")
        t_full += time.perf_counter() - t0

        fractions.append(stats.modeled_fraction)
        touched.append(stats.tiles_touched / stats.tiles_total)
        a, b = inc.result("s"), full.result("s")
        identical = identical and (
            np.array_equal(a.coords, b.coords)
            and np.array_equal(a.values, b.values)
        )
        if stats.mode != "incremental":
            identical = False
            print(f"delta {k}: expected the incremental path, got "
                  f"{stats.mode} (fraction {stats.modeled_fraction:.3f})")

    speedup = t_full / t_inc if t_inc > 0 else 0.0
    tiles_total = inc._state("s").hl.num_tiles

    print(f"streaming deltas ({deltas} deltas, left nnz {nnz_l}, "
          f"{tiles_total} left tiles of {TILE} rows):")
    print(f"{'path':<18} {'total':>12} {'per delta':>12}")
    print(f"{'incremental':<18} {t_inc * 1e3:>10.1f}ms "
          f"{t_inc / deltas * 1e3:>10.2f}ms")
    print(f"{'full recompute':<18} {t_full * 1e3:>10.1f}ms "
          f"{t_full / deltas * 1e3:>10.2f}ms")
    print()
    print(f"touched tiles per delta: {max(touched):.2%} max "
          f"(modeled fraction {sum(fractions) / len(fractions):.3f} mean)")
    print(f"outputs bit-identical across all deltas: {identical}")
    print(f"incremental speedup over full recompute: {speedup:.1f}x "
          f"(bar: {SPEEDUP_BAR:.0f}x)")
    verdict = (
        "PASS" if identical and speedup >= SPEEDUP_BAR
        and max(touched) <= 0.01 else "FAIL"
    )
    print(f"verdict: {verdict} (deltas touching <= 1% of tiles must "
          f"patch >= {SPEEDUP_BAR:.0f}x faster than recompute, "
          f"bit-identically)")


if __name__ == "__main__":
    main()
