"""Ablation A2: open addressing vs chaining for input tables.

Section 6.4 explains why FaSTCC does not beat Sparta on the vast/uber
contractions: the bottleneck there is building the tiled input tables,
and Sparta's chaining tables insert faster (a head push, no relocation)
than FaSTCC's open addressing (which pays resizes).  This ablation
measures both table families' build and probe costs directly, on the
construction-bound workload shape, confirming:

* chaining builds faster (insertion-optimized);
* open addressing probes faster per lookup once built (locality,
  no chain walks) and uses bounded probe counts.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.analysis.reporting import render_table
from repro.hashing.chaining import ChainingMultiMap
from repro.hashing.open_addressing import OpenAddressingMap

SIZES = [10_000, 100_000, 500_000]


def keys_for(n: int, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n * 4, size=n).astype(np.int64)


def time_build_open(keys: np.ndarray) -> float:
    t0 = time.perf_counter()
    # Grow-from-small, like the tile tables built while streaming input.
    m = OpenAddressingMap(64)
    m.upsert_batch(keys, np.ones(keys.shape[0]))
    return time.perf_counter() - t0


def time_build_chaining(keys: np.ndarray) -> float:
    t0 = time.perf_counter()
    m = ChainingMultiMap(max(64, keys.shape[0]))
    m.insert_batch(keys, np.ones(keys.shape[0]))
    return time.perf_counter() - t0


def time_probe_open(keys: np.ndarray, queries: np.ndarray) -> float:
    m = OpenAddressingMap(keys.shape[0] * 2)
    m.upsert_batch(keys, np.ones(keys.shape[0]))
    t0 = time.perf_counter()
    m.get_batch(queries)
    return time.perf_counter() - t0


def time_probe_chaining(keys: np.ndarray, queries: np.ndarray) -> float:
    m = ChainingMultiMap(keys.shape[0])
    m.insert_batch(keys, np.ones(keys.shape[0]))
    t0 = time.perf_counter()
    m.get_all_batch(queries)
    return time.perf_counter() - t0


def build_rows():
    rows = []
    for n in SIZES:
        keys = keys_for(n)
        queries = keys_for(n, seed=9)
        rows.append([
            n,
            time_build_open(keys) * 1e3,
            time_build_chaining(keys) * 1e3,
            time_probe_open(keys, queries) * 1e3,
            time_probe_chaining(keys, queries) * 1e3,
        ])
    return rows


def main():
    print("Ablation A2 — open addressing vs chaining (ms)")
    print(render_table(
        ["entries", "OA build", "chain build", "OA probe", "chain probe"],
        build_rows(),
    ))
    print("\nchaining inserts faster (Sparta's advantage on construction-"
          "bound vast/uber); open addressing probes faster (FaSTCC's "
          "advantage everywhere else).")

    # Probe-count evidence for the locality claim.
    keys = keys_for(100_000)
    queries = keys_for(100_000, seed=9)
    oa_c, ch_c = Counters(), Counters()
    oa = OpenAddressingMap(200_000, counters=oa_c)
    oa.upsert_batch(keys, np.ones(keys.shape[0]))
    oa_c.probes = 0
    oa.get_batch(queries)
    ch = ChainingMultiMap(100_000, counters=ch_c)
    ch.insert_batch(keys, np.ones(keys.shape[0]))
    ch_c.probes = 0
    ch.get_all_batch(queries)
    print(f"\nprobes per lookup: open addressing "
          f"{oa_c.probes / queries.shape[0]:.2f}, chaining "
          f"{ch_c.probes / queries.shape[0]:.2f}")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_chaining_builds_faster_from_cold():
    keys = keys_for(200_000)
    oa = min(time_build_open(keys) for _ in range(3))
    ch = min(time_build_chaining(keys) for _ in range(3))
    assert ch < oa


def test_open_addressing_probe_count_bounded():
    keys = keys_for(100_000)
    c = Counters()
    m = OpenAddressingMap(64, counters=c)
    m.upsert_batch(keys, np.ones(keys.shape[0]))
    c.probes = 0
    m.get_batch(keys)
    # Linear probing at load <= 0.85: expected probes/lookup is small.
    assert c.probes / keys.shape[0] < 6


def test_open_addressing_resizes_counted():
    # Streaming inserts (as during tile-table construction) trigger the
    # repeated resizes Section 6.4 blames for FaSTCC's construction cost.
    keys = keys_for(50_000)
    c = Counters()
    m = OpenAddressingMap(64, counters=c)
    for chunk in np.array_split(keys, 16):
        m.upsert_batch(chunk, np.ones(chunk.shape[0]))
    assert c.resizes >= 4


@pytest.mark.parametrize("n", [100_000])
def test_oa_build(benchmark, n):
    keys = keys_for(n)
    benchmark(lambda: time_build_open(keys))


@pytest.mark.parametrize("n", [100_000])
def test_chain_build(benchmark, n):
    keys = keys_for(n)
    benchmark(lambda: time_build_chaining(keys))


if __name__ == "__main__":
    main()
