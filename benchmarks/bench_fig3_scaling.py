"""Figure 3 reproduction: FaSTCC kernel thread scaling, 1 to 64 threads.

The paper's Figure 3 plots the factor improvement of the FaSTCC kernel
over its own single-thread execution as the thread count grows from 1
to 64 on the server.  This harness measures per-tile-pair task costs on
one real core and replays them through the dynamic-scheduling simulator
at each thread count (the DESIGN.md platform substitution).

Shape to check: near-linear scaling while the task count and task-cost
balance allow it, flattening when (a) tasks run out (speedup is capped
by the number of tile pairs) or (b) a few heavy tiles dominate (the
critical-path bound).  The simulator omits memory-bandwidth contention,
so measured-silicon curves would sit somewhat below these (noted in
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import render_series, render_table
from repro.parallel.scheduler_sim import simulate_dynamic_schedule

from common import simulated_parallel_time, time_fastcc

THREADS = [1, 2, 4, 8, 16, 32, 64]

#: Representative cases: a tile-rich dense case, a construction-bound
#: case, a sparse-accumulator case, and two QC contractions.
CASES = ["chic_0", "uber_02", "NIPS_2", "G-vvov", "C-vvov"]


def scaling_for(case_name: str, repeats: int = 2):
    run = time_fastcc(case_name, repeats=repeats)
    base = simulated_parallel_time(run, 1)
    return {k: base / simulated_parallel_time(run, k) for k in THREADS}, run


def build_rows(repeats: int = 2):
    rows = []
    for name in CASES:
        curve, run = scaling_for(name, repeats=repeats)
        rows.append([name, run.task_costs.shape[0]] + [curve[k] for k in THREADS])
    return rows


def main():
    rows = build_rows()
    print("Figure 3 — FaSTCC kernel self-speedup vs thread count")
    print(
        render_table(
            ["case", "tasks"] + [f"{k}t" for k in THREADS],
            rows,
        )
    )
    print(
        "\nspeedup saturates at min(task count, balance bound): cases with"
        " few tile-pair tasks flatten early, tile-rich cases scale further."
    )

    # Section 4.2's scheduling claim: dynamic mapping beats a static
    # partition of the same tasks.
    from repro.parallel.scheduler_sim import simulate_static_schedule

    print("\ndynamic vs static task mapping at 8 threads "
          "(kernel makespan ratio, >1 = dynamic wins):")
    for name in CASES:
        run = time_fastcc(name)
        if run.task_costs.shape[0] < 8:
            continue
        dyn = simulate_dynamic_schedule(run.task_costs, 8).makespan
        block = simulate_static_schedule(run.task_costs, 8, policy="block").makespan
        cyc = simulate_static_schedule(run.task_costs, 8, policy="cyclic").makespan
        print(f"  {name:10s} vs block: {block / dyn:5.2f}x   "
              f"vs cyclic: {cyc / dyn:5.2f}x")


# ---------------------------------------------------------------------------
# pytest entries
# ---------------------------------------------------------------------------


def test_scaling_monotone_nondecreasing():
    curve, _ = scaling_for("chic_0", repeats=1)
    values = [curve[k] for k in THREADS]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_tile_rich_case_scales():
    """chic_0 has hundreds of tile tasks: 8-thread speedup must be
    substantial (>4x) and 64-thread speedup higher still."""
    curve, run = scaling_for("chic_0", repeats=2)
    assert run.task_costs.shape[0] >= 32
    assert curve[8] > 3.5
    assert curve[64] >= curve[8]

    # And bounded by the task count.
    assert curve[64] <= run.task_costs.shape[0] + 1


def test_task_poor_case_saturates():
    """A case with very few tile pairs cannot scale its *kernel* past
    the task count (the parallel section is the tile-pair queue)."""
    run = time_fastcc("uber_123")
    n = run.task_costs.shape[0]
    k1 = simulate_dynamic_schedule(run.task_costs, 1).makespan
    k64 = simulate_dynamic_schedule(run.task_costs, 64).makespan
    assert k1 / max(k64, 1e-12) <= n + 1e-9


def test_simulator_self_consistency():
    """Simulated 1-thread kernel time equals the sum of task costs."""
    run = time_fastcc("chic_123")
    sim = simulate_dynamic_schedule(run.task_costs, 1)
    assert sim.makespan == pytest.approx(run.task_costs.sum(), rel=1e-9)


@pytest.mark.parametrize("case_name", ["chic_0"])
def test_kernel_measurement(benchmark, case_name):
    benchmark.pedantic(lambda: time_fastcc(case_name), rounds=2, iterations=1)


if __name__ == "__main__":
    main()
