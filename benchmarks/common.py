"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper:
run ``pytest benchmarks/ --benchmark-only`` for the timed variants, or
``python benchmarks/bench_<name>.py`` to print the paper-style rows
(paper values side by side with measured values).  EXPERIMENTS.md is the
curated record of one such run.

Times here are wall-clock medians on the scaled workloads; parallel
results are produced by replaying measured per-task costs through the
dynamic-scheduling simulator at each platform's thread count (see
DESIGN.md's substitution table).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import tiled_co_contract
from repro.data.registry import all_cases, get_case
from repro.machine.specs import DESKTOP, SERVER, MachineSpec
from repro.parallel.scheduler_sim import simulate_dynamic_schedule

__all__ = [
    "load_operands",
    "linearized_case",
    "time_fastcc",
    "time_method",
    "simulated_parallel_time",
    "simulate_sparta_parallel",
    "tile_candidates",
    "FROSTT_ORDER",
    "QUANTUM_ORDER",
]

def quick_mode() -> bool:
    """Whether ``run_all.py --quick`` (or the env var) is in effect."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def effective_repeats(repeats: int) -> int:
    """Clamp a harness's repeat count to 1 under quick mode."""
    return 1 if quick_mode() else max(1, repeats)


#: Table 3 row order.
FROSTT_ORDER = [
    "chic_0", "chic_01", "chic_123", "uber_02", "uber_123",
    "vast_01", "vast_014", "NIPS_2", "NIPS_23", "NIPS_013",
]
QUANTUM_ORDER = ["G-ovov", "G-vvoo", "G-vvov", "C-ovov", "C-vvoo", "C-vvov"]


@lru_cache(maxsize=32)
def load_operands(case_name: str):
    """Load a registry case and pre-linearize it (cached per process).

    Returns ``(spec, left_op, right_op)``.  Caching keeps repeated
    benchmark invocations from regenerating multi-100k-nnz tensors.
    """
    case = get_case(case_name)
    left, right, pairs = case.load()
    spec = ContractionSpec(left.shape, right.shape, pairs)
    left_op = spec.linearize_left(left).sum_duplicates()
    right_op = spec.linearize_right(right).sum_duplicates()
    return spec, left_op, right_op


def linearized_case(case_name: str):
    """Alias of :func:`load_operands` kept for readability at call sites."""
    return load_operands(case_name)


@dataclass
class FastccRun:
    """One measured FaSTCC execution."""

    seconds: float
    task_costs: np.ndarray
    output_nnz: int
    plan_accumulator: str
    tile: int
    phase_seconds: dict


def time_fastcc(
    case_name: str,
    *,
    machine: MachineSpec = DESKTOP,
    accumulator: str = "auto",
    tile_size: int | None = None,
    repeats: int = 1,
) -> FastccRun:
    """Run the FaSTCC kernel on a registry case and measure it.

    Runs single-threaded so per-task costs are exact; parallel times are
    derived with :func:`simulated_parallel_time`.
    """
    spec, left_op, right_op = load_operands(case_name)
    plan = choose_plan(
        spec, left_op.nnz, right_op.nnz, machine,
        accumulator=accumulator, tile_size=tile_size,
    )
    best = None
    for _ in range(effective_repeats(repeats)):
        t0 = time.perf_counter()
        _, _, values, stats = tiled_co_contract(left_op, right_op, plan)
        dt = time.perf_counter() - t0
        if best is None or dt < best.seconds:
            best = FastccRun(
                seconds=dt,
                task_costs=stats.task_costs,
                output_nnz=int(values.shape[0]),
                plan_accumulator=plan.accumulator,
                tile=plan.tile_l,
                phase_seconds=dict(stats.phase_seconds),
            )
    return best


def time_method(case_name: str, method: str, *, repeats: int = 1) -> float:
    """Wall-clock seconds of a baseline *kernel* on a registry case.

    Operates on the same pre-linearized operands as :func:`time_fastcc`
    so comparisons are kernel-vs-kernel: the linearize/delinearize
    phases are identical between methods (the paper charges them to
    every system equally) and cancel out of the speedup ratios.
    """
    from repro.baselines.sparta import sparta_contract
    from repro.baselines.sparta_improved import sparta_improved_contract
    from repro.baselines.taco import taco_contract
    from repro.baselines.schemes import contract_untiled

    _, left_op, right_op = load_operands(case_name)
    kernels = {
        "sparta": sparta_contract,
        "sparta_improved": sparta_improved_contract,
        "taco": taco_contract,
    }
    if method in kernels:
        fn = kernels[method]

        def run():
            fn(left_op, right_op)
    else:
        def run():
            contract_untiled(method, left_op, right_op)

    best = float("inf")
    for _ in range(effective_repeats(repeats)):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def simulated_parallel_time(run: FastccRun, n_threads: int) -> float:
    """Replay a measured FaSTCC run at ``n_threads``.

    The tile-pair tasks are replayed through the dynamic scheduler; the
    non-task phases (table construction, output merge) are scaled
    conservatively — table construction parallelizes across tiles (the
    paper splits threads between the two operands), the merge is serial.
    """
    kernel = simulate_dynamic_schedule(run.task_costs, n_threads).makespan
    build = run.phase_seconds.get("build_tables", 0.0) / min(n_threads, 4)
    merge = run.phase_seconds.get("merge_output", 0.0)
    return kernel + build + merge


def simulate_sparta_parallel(case_name: str, total_seconds: float, n_threads: int) -> float:
    """Replay a measured Sparta run at ``n_threads``.

    Sparta parallelizes over left slices; per-slice costs are estimated
    by distributing the measured total proportionally to each slice's
    multiply-accumulate work (computable exactly from the operands).
    """
    _, left_op, right_op = load_operands(case_name)
    # Work per distinct l: sum over its fiber of nnz_R(c).
    c_keys, c_counts = np.unique(right_op.con, return_counts=True)
    pos = np.searchsorted(c_keys, left_op.con)
    pos_clamped = np.minimum(pos, len(c_keys) - 1) if len(c_keys) else pos
    match = len(c_keys) > 0
    weight = np.zeros(left_op.nnz)
    if match:
        hit = c_keys[pos_clamped] == left_op.con
        weight[hit] = c_counts[pos_clamped[hit]]
    weight += 1.0  # fiber traversal cost
    order = np.argsort(left_op.ext, kind="stable")
    sorted_ext = left_op.ext[order]
    sorted_w = weight[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], sorted_ext[1:] != sorted_ext[:-1]])
    )
    per_l = np.add.reduceat(sorted_w, boundaries)
    total_work = per_l.sum()
    if total_work <= 0:
        return total_seconds / n_threads
    costs = total_seconds * per_l / total_work
    return simulate_dynamic_schedule(costs, n_threads).makespan


def tile_candidates(spec: ContractionSpec, *, span: int = 4) -> list[int]:
    """Powers of two around the model-relevant range for a tile sweep."""
    import math

    hi = max(spec.L, spec.R)
    top = 1 << int(math.ceil(math.log2(max(2, hi))))
    tiles = []
    t = top
    for _ in range(2 * span + 1):
        if t < 2:
            break
        tiles.append(t)
        t //= 2
    return sorted(tiles)
