"""Sharded serving benchmark: consistent-hash scaling past the GIL.

The process-sharded :class:`~repro.serve.ShardRouter` exists because
the thread-pooled service serializes CPU-bound contraction work on one
GIL.  This harness quantifies what sharding buys at 1/2/4 shards under
a fixed offered load of mixed-signature pairwise requests:

* **scaling shape** (the headline) — per-request execute costs are
  measured on a real single-process service, then replayed through the
  dynamic-scheduling simulator under the *exact* consistent-hash
  assignment the router would use (DESIGN.md's platform substitution,
  the same device the Fig. 3 harness uses: the host running this
  benchmark may not have 4 free cores, but the per-request costs and
  the hash split are both real).  The load-driven rebalancing hook
  (:func:`~repro.serve.sharding.suggest_weights`) is applied exactly as
  ``ShardRouter.rebalance`` would, so the reported speedup is the
  shipping router's, not an idealized work-stealing bound.
* **real wall-clock** — the same stream through real spawned shard
  processes, reported honestly alongside the host's CPU count (on a
  single-core host the real curve is flat; the simulator row is the
  claim, this row is the evidence the stack works end to end).
* **per-shard plan-cache hit rate** — signature affinity means each
  shard should converge at least as well as one unsharded service on
  the full stream.

Acceptance bars: simulated speedup >= 1.7x at 2 shards and >= 3.0x at
4 shards; every shard's plan hit rate within noise of the unsharded
baseline; every request terminal and none failed.

Run: ``PYTHONPATH=src python benchmarks/bench_serve_shards.py``
Writes ``results/serve_shards.json`` (includes the loadgen seed).
"""

from __future__ import annotations

import json
import os

from common import quick_mode
from repro.machine.specs import DESKTOP
from repro.parallel.scheduler_sim import simulate_dynamic_schedule
from repro.serve import (
    ContractionService,
    HashRing,
    ServiceConfig,
    ShardedConfig,
    ShardRouter,
    run_closed_loop,
    suggest_weights,
    synthetic_requests,
)

SEED = 7
SHARD_COUNTS = [1, 2, 4]
N_SIGNATURES = 12
QUEUE_CAPACITY = 64
#: Rebalancing iterations for the simulated ring (each one is one
#: ``ShardRouter.rebalance`` call driven by per-shard busy seconds).
REBALANCE_ROUNDS = 6

#: Acceptance bars for the simulated consistent-hash scaling.
MIN_SPEEDUP = {1: 1.0, 2: 1.7, 4: 3.0}
#: Hit-rate slack: per-shard and baseline rates are equal in the exact
#: proportional-split case, so only guard against real regressions.
HIT_RATE_TOLERANCE = 0.005


def measure_costs(requests) -> tuple[list[float], float]:
    """Real per-request execute seconds on one unsharded service.

    Requests run strictly one at a time so each cost is clean of queue
    interference; the same run yields the single-process plan-cache
    hit rate the per-shard rates are compared against.
    """
    config = ServiceConfig(
        queue_capacity=QUEUE_CAPACITY, policy="block", n_workers=1
    )
    costs = []
    with ContractionService(machine=DESKTOP, config=config) as service:
        for request in requests:
            response = service.submit(request).result(60.0)
            assert response.status == "ok", response.status
            costs.append(response.timings["execute"])
        hit_rate = service.runtime.plan_cache.hit_rate
    return costs, hit_rate


def simulate_shards(keys, costs, n_shards: int) -> dict:
    """Fleet makespan under the router's consistent-hash assignment.

    Each shard is one worker process draining its own queue, so a
    shard's makespan is a 1-worker dynamic schedule of the requests the
    ring routes to it; the fleet finishes when the slowest shard does.
    The ring is rebalanced ``REBALANCE_ROUNDS`` times from per-shard
    busy seconds — exactly what ``ShardRouter.rebalance`` does — and
    the best post-rebalance assignment is kept.
    """
    ring = HashRing(range(n_shards))

    def fleet_makespan() -> tuple[float, dict]:
        by_shard: dict[int, list[float]] = {s: [] for s in range(n_shards)}
        for key, cost in zip(keys, costs):
            by_shard[ring.route(key)].append(cost)
        loads = {
            s: simulate_dynamic_schedule(c, 1).makespan if c else 0.0
            for s, c in by_shard.items()
        }
        return max(loads.values()), loads

    makespan, loads = fleet_makespan()
    best, best_weights = makespan, {s: 1.0 for s in range(n_shards)}
    for _ in range(REBALANCE_ROUNDS):
        ring.set_weights(suggest_weights(ring, loads, gain=0.5))
        makespan, loads = fleet_makespan()
        if makespan < best:
            best = makespan
            best_weights = {s: ring.weight(s) for s in ring.shards}
    ideal = simulate_dynamic_schedule(costs, n_shards).makespan
    return {
        "n_shards": n_shards,
        "makespan_s": best,
        "ideal_makespan_s": ideal,
        "weights": {str(s): w for s, w in best_weights.items()},
    }


def run_real(requests, n_shards: int) -> dict:
    """The same stream through real spawned shard processes."""
    config = ShardedConfig(
        n_shards=n_shards,
        service=ServiceConfig(
            queue_capacity=QUEUE_CAPACITY, policy="block", n_workers=1
        ),
        max_in_flight=QUEUE_CAPACITY,
    )
    with ShardRouter(machine=DESKTOP, config=config) as router:
        report = run_closed_loop(
            router, requests, concurrency=2 * n_shards, seed=SEED
        )
        doc = router.metrics_json()
    hit_rates = {
        shard_id: shard["runtime"]["plan_hit_rate"]
        for shard_id, shard in doc["shards"].items()
        if shard["runtime"]["calls"] > 0
    }
    return {
        "n_shards": n_shards,
        "achieved_rps": report.achieved_rps,
        "p99_ms": report.p99_s * 1e3,
        "statuses": report.statuses,
        "seed": report.seed,
        "per_shard_hit_rate": hit_rates,
        "aggregate_hit_rate": doc["aggregate"]["runtime"]["plan_hit_rate"],
    }


def main() -> None:
    n_requests = 48 if quick_mode() else 180
    requests = synthetic_requests(
        n_requests, n_signatures=N_SIGNATURES, seed=SEED
    )
    keys = [r.affinity_key(DESKTOP) for r in requests]

    costs, baseline_hit = measure_costs(requests)
    print(f"Sharded serving: {n_requests} requests, {N_SIGNATURES} "
          f"signatures, seed {SEED} (host cpus: {os.cpu_count()})")
    print(f"single-process baseline: total execute "
          f"{sum(costs) * 1e3:.1f}ms, plan hit rate {baseline_hit:.1%}\n")

    print("simulated consistent-hash scaling (measured costs replayed "
          "through the dynamic-schedule simulator):")
    print(f"{'shards':>6} {'makespan':>12} {'speedup':>8} {'ideal':>8}  "
          f"verdict")
    sim_rows = []
    base_makespan = None
    for n in SHARD_COUNTS:
        row = simulate_shards(keys, costs, n)
        if base_makespan is None:
            base_makespan = row["makespan_s"]
        row["speedup"] = base_makespan / row["makespan_s"]
        row["ideal_speedup"] = base_makespan / row["ideal_makespan_s"]
        row["pass"] = row["speedup"] >= MIN_SPEEDUP[n]
        sim_rows.append(row)
        print(f"{n:>6} {row['makespan_s'] * 1e3:>10.1f}ms "
              f"{row['speedup']:>7.2f}x {row['ideal_speedup']:>7.2f}x  "
              f"[{'PASS' if row['pass'] else 'FAIL'} "
              f">= {MIN_SPEEDUP[n]:.1f}x]")

    print("\nreal shard processes (wall-clock on this host):")
    print(f"{'shards':>6} {'achieved':>9} {'p99 (ms)':>9} "
          f"{'min shard hit':>14} {'agg hit':>8}")
    real_rows = []
    for n in SHARD_COUNTS:
        row = run_real(requests, n)
        real_rows.append(row)
        min_hit = min(row["per_shard_hit_rate"].values())
        print(f"{n:>6} {row['achieved_rps']:>8.1f}r {row['p99_ms']:>9.2f} "
              f"{min_hit:>13.1%} {row['aggregate_hit_rate']:>7.1%}")

    worst_hit = min(
        min(r["per_shard_hit_rate"].values()) for r in real_rows
    )
    checks = {
        "simulated speedup bars (1.7x @2, 3.0x @4)":
            all(r["pass"] for r in sim_rows),
        "per-shard plan hit rate >= single-process baseline":
            worst_hit >= baseline_hit - HIT_RATE_TOLERANCE,
        "every request ok at every shard count":
            all(
                r["statuses"].get("ok", 0) == n_requests for r in real_rows
            ),
    }
    print()
    for name, ok in checks.items():
        print(f"  {'PASS' if ok else 'FAIL'}: {name}")
    if os.cpu_count() and os.cpu_count() < max(SHARD_COUNTS):
        print(f"  note: host has {os.cpu_count()} cpu(s); real wall-clock "
              f"cannot scale here, the simulator row carries the claim "
              f"(DESIGN.md substitution)")

    out_dir = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(out_dir, exist_ok=True)
    doc = {
        "seed": SEED,
        "n_requests": n_requests,
        "n_signatures": N_SIGNATURES,
        "host_cpus": os.cpu_count(),
        "baseline_hit_rate": baseline_hit,
        "simulated": sim_rows,
        "real": real_rows,
        "checks": checks,
    }
    path = os.path.join(out_dir, "serve_shards.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
    print(f"\nwrote {os.path.relpath(path)}")
    if not all(checks.values()):
        print("WARNING: sharded-serving acceptance bars not met")


if __name__ == "__main__":
    main()
