"""Repeated-contraction benchmark for the adaptive runtime's caches.

Serving traffic re-issues the same structural contraction over and
over; the adaptive runtime (``repro.runtime``) answers repeat calls
from its plan cache and reuses the operands' linearized forms and tiled
tables, leaving only the irreducible work (co-iteration, accumulation,
drain, delinearization).  This harness measures that directly: for each
registry case, call 1 is cold (plans, linearizes, builds tables) and
calls 2..N are warm.  The acceptance bar is a >= 1.3x wall-clock
improvement on the warm calls, with counters proving the warm calls
skipped planning and table construction outright.

Run: ``PYTHONPATH=src python benchmarks/bench_runtime_cache.py``
"""

from __future__ import annotations

import statistics

from common import effective_repeats
from repro.data.registry import get_case
from repro.machine.specs import DESKTOP
from repro.runtime import ContractionRuntime

#: Cases spanning both families and both accumulator kinds.
CASES = ["chic_01", "uber_123", "vast_014", "NIPS_23", "G-vvoo"]

#: Acceptance threshold on warm-vs-cold wall clock.
SPEEDUP_FLOOR = 1.3


def bench_case(case_name: str, warm_calls: int = 6) -> dict:
    """Measure one case: cold call, then ``warm_calls`` warm repeats."""
    left, right, pairs = get_case(case_name).load()
    runtime = ContractionRuntime(machine=DESKTOP, calibrate=False)

    runtime.contract(left, right, pairs, name=f"{case_name}/cold")
    cold = runtime.records[0]
    for k in range(warm_calls):
        runtime.contract(left, right, pairs, name=f"{case_name}/warm{k}")
    warm_records = runtime.records[1:]

    c = runtime.counters
    skipped_planning = c.plan_cache_hits == len(warm_records)
    skipped_builds = (
        c.table_builds == 2
        and c.table_reuse_hits == 2 * len(warm_records)
    )
    warm_median = statistics.median(r.seconds for r in warm_records)
    return {
        "case": case_name,
        "cold_s": cold.seconds,
        "warm_median_s": warm_median,
        "speedup": cold.seconds / warm_median if warm_median > 0 else float("inf"),
        "skipped_planning": skipped_planning,
        "skipped_builds": skipped_builds,
        "accumulator": cold.accumulator,
    }


def main() -> None:
    warm_calls = effective_repeats(6) * 3  # 3 warm calls in quick mode
    rows = [bench_case(name, warm_calls=warm_calls) for name in CASES]
    print("Adaptive runtime: cold call vs warm (plan + tables cached)")
    print(f"{'case':<10} {'acc':<7} {'cold (s)':>10} {'warm med (s)':>13} "
          f"{'speedup':>8}  skipped")
    for r in rows:
        skipped = []
        if r["skipped_planning"]:
            skipped.append("planning")
        if r["skipped_builds"]:
            skipped.append("tables")
        verdict = "PASS" if r["speedup"] >= SPEEDUP_FLOOR else "FAIL"
        print(f"{r['case']:<10} {r['accumulator']:<7} {r['cold_s']:>10.4f} "
              f"{r['warm_median_s']:>13.4f} {r['speedup']:>7.2f}x  "
              f"{'+'.join(skipped) or 'NONE':<16} [{verdict}]")
    passing = [r for r in rows if r["speedup"] >= SPEEDUP_FLOOR]
    geo = 1.0
    for r in rows:
        geo *= r["speedup"]
    geo **= 1.0 / len(rows)
    print(f"\n{len(passing)}/{len(rows)} cases meet the {SPEEDUP_FLOOR}x bar; "
          f"geometric-mean warm speedup {geo:.2f}x")
    if not all(r["skipped_planning"] and r["skipped_builds"] for r in rows):
        print("WARNING: some warm calls re-planned or rebuilt tables")


if __name__ == "__main__":
    main()
