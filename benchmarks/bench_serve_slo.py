"""Serving SLO benchmark: throughput vs offered load for repro.serve.

A :class:`~repro.serve.ContractionService` (bounded queue, shed_oldest
policy) is driven by the open-loop Poisson generator at three offered
loads calibrated against a closed-loop capacity measurement:

* **0.5x capacity** — the service keeps up; shed rate should be ~0 and
  p99 close to bare execution latency.
* **1x capacity** — the knee: queueing delay appears, shedding stays
  marginal.
* **3x capacity** — overload: the bounded admission queue must hold
  (high-water <= capacity) and the excess must surface as explicit
  ``shed`` responses rather than latency collapse.

Each row reports achieved throughput, p50/p99 latency, shed rate and
the queue high-water mark.  The acceptance bars are structural, not
timing-sensitive: the queue bound holds at every load, every request
reaches a terminal status, and the overload row sheds while the
underload row does not fail.

Run: ``PYTHONPATH=src python benchmarks/bench_serve_slo.py``
"""

from __future__ import annotations

from common import quick_mode
from repro.machine.specs import DESKTOP
from repro.serve import (
    ContractionService,
    ServiceConfig,
    run_closed_loop,
    run_open_loop,
    synthetic_requests,
)

#: Offered-load multiples of the measured closed-loop capacity.
LOAD_LEVELS = [("0.5x", 0.5), ("1x", 1.0), ("3x", 3.0)]

QUEUE_CAPACITY = 16
N_WORKERS = 2


def measure_capacity(n_requests: int, seed: int) -> float:
    """Closed-loop throughput = the service's capacity in rps."""
    config = ServiceConfig(
        queue_capacity=QUEUE_CAPACITY, policy="block", n_workers=N_WORKERS
    )
    requests = synthetic_requests(n_requests, n_signatures=4, seed=seed)
    with ContractionService(machine=DESKTOP, config=config) as service:
        report = run_closed_loop(service, requests, concurrency=N_WORKERS)
    return report.achieved_rps


def bench_level(label: str, rate: float, n_requests: int, seed: int) -> dict:
    """One open-loop run at ``rate`` against a fresh service."""
    config = ServiceConfig(
        queue_capacity=QUEUE_CAPACITY, policy="shed_oldest",
        n_workers=N_WORKERS,
    )
    requests = synthetic_requests(n_requests, n_signatures=4, seed=seed)
    with ContractionService(machine=DESKTOP, config=config) as service:
        report = run_open_loop(service, requests, rate, seed=seed)
        queue = service.queue.stats()
        hit_rate = service.runtime.plan_cache.hit_rate
    terminal = sum(report.statuses.values())
    return {
        "label": label,
        "offered_rps": rate,
        "achieved_rps": report.achieved_rps,
        "p50_ms": report.p50_s * 1e3,
        "p99_ms": report.p99_s * 1e3,
        "shed_rate": report.shed_rate,
        "statuses": report.statuses,
        "all_terminal": terminal == n_requests,
        "high_water": queue["high_water"],
        "bounded": queue["high_water"] <= queue["capacity"],
        "plan_hit_rate": hit_rate,
    }


def main() -> None:
    n_requests = 24 if quick_mode() else 120
    seed = 7
    capacity_rps = measure_capacity(n_requests, seed)
    print(f"Serving SLO: open-loop load sweep (closed-loop capacity "
          f"{capacity_rps:.1f} rps, queue bound {QUEUE_CAPACITY}, "
          f"{N_WORKERS} workers)")
    print(f"{'load':<6} {'offered':>9} {'achieved':>9} {'p50 (ms)':>9} "
          f"{'p99 (ms)':>9} {'shed':>6} {'hi-water':>9}  verdict")
    rows = []
    for label, mult in LOAD_LEVELS:
        rate = max(1.0, mult * capacity_rps)
        row = bench_level(label, rate, n_requests, seed)
        rows.append(row)
        ok = row["bounded"] and row["all_terminal"]
        print(f"{row['label']:<6} {row['offered_rps']:>9.1f} "
              f"{row['achieved_rps']:>9.1f} {row['p50_ms']:>9.2f} "
              f"{row['p99_ms']:>9.2f} {row['shed_rate']:>5.0%} "
              f"{row['high_water']:>6}/{QUEUE_CAPACITY}  "
              f"[{'PASS' if ok else 'FAIL'}]")

    underload, overload = rows[0], rows[-1]
    checks = {
        "queue bounded at every load":
            all(r["bounded"] for r in rows),
        "every request terminal at every load":
            all(r["all_terminal"] for r in rows),
        "no failed requests":
            all(r["statuses"].get("failed", 0) == 0 for r in rows),
        "underload sheds less than overload":
            underload["shed_rate"] <= overload["shed_rate"],
    }
    print()
    for name, ok in checks.items():
        print(f"  {'PASS' if ok else 'FAIL'}: {name}")
    print(f"\nplan-cache hit rate at overload: "
          f"{overload['plan_hit_rate']:.0%} "
          f"(4 signatures through one shared runtime)")
    if not all(checks.values()):
        print("WARNING: SLO acceptance bars not met")


if __name__ == "__main__":
    main()
