"""Table 1 reproduction: data movement and space for CI / CM / CO.

The paper's Table 1 gives closed forms for hash queries, retrieved data
volume, and accumulator size per loop order.  This harness runs all
three instrumented schemes (plus tiled CO) on uniform random problems
and prints predicted vs measured counts; the pytest-benchmark entries
time each scheme on the same problem so the count ordering can be seen
translating into wall-clock ordering.

Run ``python benchmarks/bench_table1_loop_orders.py`` for the table, or
``pytest benchmarks/bench_table1_loop_orders.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.analysis.counters import Counters
from repro.analysis.loop_order import (
    measure_scheme,
    predicted_costs,
    predicted_tiled_co_costs,
)
from repro.analysis.reporting import render_table
from repro.baselines.schemes import contract_untiled
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import tiled_co_contract
from repro.data.random_tensors import random_operand_pair
from repro.machine.specs import DESKTOP

# The measurement problem: moderate size so CI finishes in seconds.
PROBLEM = dict(L=400, C=300, R=400, density_l=0.02, density_r=0.02, seed=21)
TILE = 64


def _operands():
    return random_operand_pair(
        PROBLEM["L"], PROBLEM["C"], PROBLEM["R"],
        density_l=PROBLEM["density_l"], density_r=PROBLEM["density_r"],
        seed=PROBLEM["seed"],
    )


def build_rows():
    left, right = _operands()
    predicted = predicted_costs(left, right)
    rows = []
    for scheme in ("ci", "cm", "co"):
        sc = measure_scheme(scheme, left, right)
        p = predicted[scheme]
        rows.append(
            [
                scheme.upper(),
                p.queries,
                sc.measured.hash_queries,
                p.data_volume,
                sc.measured.data_volume,
                int(p.accumulator_cells),
                sc.measured.workspace_cells,
            ]
        )
    # Tiled CO (Section 5.3 extension of the table).
    spec = ContractionSpec(
        (left.ext_extent, left.con_extent),
        (left.con_extent, right.ext_extent),
        [(1, 0)],
    )
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=TILE)
    c = Counters()
    tiled_co_contract(left, right, plan, counters=c)
    p = predicted_tiled_co_costs(left, right, TILE, TILE)
    rows.append(
        [
            f"TiledCO(T={TILE})",
            p.queries,
            c.hash_queries,
            p.data_volume,
            c.data_volume,
            int(p.accumulator_cells),
            c.workspace_cells,
        ]
    )
    return rows


def main():
    left, right = _operands()
    print(
        f"Table 1 — loop-order data movement  "
        f"(L={left.ext_extent}, R={right.ext_extent}, C={left.con_extent}, "
        f"nnz_L={left.nnz}, nnz_R={right.nnz})"
    )
    print(
        render_table(
            ["scheme", "queries(pred)", "queries(meas)", "volume(pred)",
             "volume(meas)", "ws(pred)", "ws(meas)"],
            build_rows(),
        )
    )
    print(
        "\npredictions are extent-based upper bounds; measured counts use "
        "nonzero slices, so measured <= predicted with the same ordering "
        "CO < CM < CI (queries, volume) and CI < CM < CO (workspace)."
    )


# ---------------------------------------------------------------------------
# pytest-benchmark timed variants
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def operands():
    return _operands()


@pytest.mark.parametrize("scheme", ["ci", "cm", "co"])
def test_untiled_scheme_time(benchmark, operands, scheme):
    left, right = operands
    benchmark(lambda: contract_untiled(scheme, left, right))


def test_tiled_co_time(benchmark, operands):
    left, right = operands
    spec = ContractionSpec(
        (left.ext_extent, left.con_extent),
        (left.con_extent, right.ext_extent),
        [(1, 0)],
    )
    plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=TILE)
    benchmark(lambda: tiled_co_contract(left, right, plan))


def test_counter_orderings_hold(operands):
    """The Table 1 orderings, asserted (runs in the benchmark suite so a
    regression in any kernel's access pattern fails loudly here)."""
    left, right = operands
    m = {s: measure_scheme(s, left, right).measured for s in ("ci", "cm", "co")}
    assert m["co"].hash_queries < m["cm"].hash_queries < m["ci"].hash_queries
    assert m["co"].data_volume < m["cm"].data_volume < m["ci"].data_volume
    assert (
        m["ci"].workspace_cells
        < m["cm"].workspace_cells
        < m["co"].workspace_cells
    )


if __name__ == "__main__":
    main()
