"""Integration tests: optimizer passes through the network executor."""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import PlanError
from repro.machine.specs import DESKTOP
from repro.network import NetworkExecutor, StepResultCache
from repro.network.ir import TensorNetwork
from repro.network.plan import NetworkPlan, NetworkSignature
from repro.tensors.coo import COOTensor


def twin_operands(seed=3, n=20):
    a = random_coo((n, n), nnz=4 * n, seed=seed)
    b = random_coo((n, n), nnz=4 * n, seed=seed + 1)
    return "ij,jk,lm,mn->il", [a, b, a, b]


def chain_operands(seed=5, n=20):
    ops = [random_coo((n, n), nnz=4 * n, seed=seed + k) for k in range(3)]
    return "ab,bc,cd->ad", ops


class TestAnnotations:
    def test_cse_annotated_on_shared_branches(self):
        subs, ops = twin_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        plan, _ = ex.plan(subs, ops, optimizer="dp")
        assert plan.passes == ("cse", "dead", "hoist")
        assert any(s.cse_of >= 0 for s in plan.steps)

    def test_dead_annotated_on_empty_operand(self):
        subs, ops = chain_operands()
        ops[1] = COOTensor.empty(ops[1].shape)
        ex = NetworkExecutor(machine=DESKTOP)
        plan, _ = ex.plan(subs, ops)
        assert any(s.dead for s in plan.steps)
        assert plan.zero_operands == (1,)

    def test_hoist_annotated_on_input_sides(self):
        subs, ops = chain_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        plan, _ = ex.plan(subs, ops, optimizer="dp")
        assert any(
            s.hoist_l or s.hoist_r
            for s in plan.steps if s.kind == "contract"
        )

    def test_plan_network_passes_option(self):
        from repro.network import plan_network

        plan = plan_network(
            "ab,bc,cd->ad", [(12, 12)] * 3, machine=DESKTOP,
            nnz=[40, 0, 40], passes="default",
        )
        assert plan.passes == ("cse", "dead", "hoist")
        assert plan.zero_operands == (1,)
        assert all(s.dead for s in plan.steps)

    def test_network_empty_operands_helper(self):
        network = TensorNetwork.parse(
            "ab,bc,cd->ad", [(12, 12)] * 3, nnz=[40, 0, 40]
        )
        assert network.empty_operands() == (1,)

    def test_explain_shows_annotations(self):
        subs, ops = twin_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        plan, _ = ex.plan(subs, ops, optimizer="dp")
        text = plan.explain()
        assert "passes applied: cse, dead, hoist" in text
        assert "cse->" in text


class TestBitIdentity:
    @pytest.mark.parametrize("optimizer", ["left", "greedy", "dp", "sparsity"])
    def test_optimized_matches_unoptimized(self, optimizer):
        subs, ops = twin_operands()
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        opt = NetworkExecutor(machine=DESKTOP)
        ref = base.contract(subs, *ops, optimizer=optimizer)
        out = opt.contract(subs, *ops, optimizer=optimizer)
        assert np.array_equal(ref.to_dense(), out.to_dense())

    def test_digest_mismatch_falls_back(self):
        # branch operands share shape/nnz (so the CSE pass merges the
        # steps) but differ in content: the runtime digest guard must
        # reject the reuse and recompute
        a = random_coo((20, 20), nnz=80, seed=1)
        b = random_coo((20, 20), nnz=80, seed=2)
        c = random_coo((20, 20), nnz=80, seed=3)
        d = random_coo((20, 20), nnz=80, seed=4)
        subs = "ij,jk,lm,mn->il"
        opt = NetworkExecutor(machine=DESKTOP)
        plan, _ = opt.plan(subs, [a, b, c, d], optimizer="dp")
        assert any(s.cse_of >= 0 for s in plan.steps)
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        ref = base.contract(subs, a, b, c, d, optimizer="dp")
        out = opt.contract(subs, a, b, c, d, optimizer="dp")
        assert np.array_equal(ref.to_dense(), out.to_dense())
        assert opt.metrics()["cse_misses"] > 0
        assert opt.metrics()["cse_hits"] == 0

    def test_dead_skip_emits_empty_result(self):
        subs, ops = chain_operands()
        ops[1] = COOTensor.empty(ops[1].shape)
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        opt = NetworkExecutor(machine=DESKTOP)
        ref = base.contract(subs, *ops)
        out = opt.contract(subs, *ops)
        assert out.nnz == 0
        assert np.array_equal(ref.to_dense(), out.to_dense())
        assert opt.metrics()["dead_skips"] > 0

    def test_dead_premise_guard_disables_shortcut(self):
        # a plan annotated dead from declared-zero metadata must not
        # skip work when replayed over operands that are NOT empty
        network_subs = "ij,jk,kl->il"
        shapes = [(10, 10)] * 3
        ex = NetworkExecutor(machine=DESKTOP)
        plan, _ = ex.plan(network_subs, shapes, nnz=[25, 0, 25])
        assert any(s.dead for s in plan.steps)
        ops = [random_coo((10, 10), nnz=25, seed=k) for k in range(3)]
        out, report = ex.execute(plan, ops)
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        ref = base.contract(network_subs, *ops)
        assert np.array_equal(ref.to_dense(), out.to_dense())
        assert ex.metrics()["dead_skips"] == 0


class TestPlanCacheKeying:
    def test_pipeline_key_qualifies_signature(self):
        subs, ops = chain_operands()
        network = TensorNetwork.parse(subs, ops)
        plain = NetworkSignature.for_network(network, DESKTOP, "dp")
        piped = NetworkSignature.for_network(
            network, DESKTOP, "dp", pipeline="cse,dead,hoist"
        )
        assert plain.key != piped.key
        assert "|P" not in plain.key  # historical keys stay stable
        assert piped.key.endswith("|Pcse,dead,hoist")

    def test_executors_cache_under_distinct_keys(self):
        subs, ops = chain_operands()
        opt = NetworkExecutor(machine=DESKTOP)
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        p_opt, _ = opt.plan(subs, ops, optimizer="dp")
        p_base, _ = base.plan(subs, ops, optimizer="dp")
        assert p_opt.signature_key != p_base.signature_key
        # a pipeline executor can never replay an unoptimized plan
        opt2 = NetworkExecutor(machine=DESKTOP)
        opt2.seed_plan(p_base)
        assert opt2.cached_plan(subs, ops, optimizer="dp") is None

    def test_pipeline_key_property(self):
        assert NetworkExecutor(machine=DESKTOP).pipeline_key == (
            "cse,dead,hoist"
        )
        assert NetworkExecutor(machine=DESKTOP, passes=None).pipeline_key == ""
        assert NetworkExecutor(
            machine=DESKTOP, passes="cse"
        ).pipeline_key == "cse"


class TestJsonRoundTrip:
    def test_annotations_survive_serialization(self):
        subs, ops = twin_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        plan, _ = ex.plan(subs, ops, optimizer="dp")
        clone = NetworkPlan.from_json(plan.to_json())
        assert clone.passes == plan.passes
        assert clone.zero_operands == plan.zero_operands
        for s, c in zip(plan.steps, clone.steps):
            assert (s.cse_of, s.dead, s.hoist_l, s.hoist_r) == (
                c.cse_of, c.dead, c.hoist_l, c.hoist_r
            )


class TestPrepare:
    def test_prepare_pins_and_unpins(self):
        subs, ops = chain_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        ref = base.contract(subs, *ops)
        with ex.prepare(subs, *ops) as prepared:
            assert ex.runtime.metrics()["operands_pinned"] > 0
            out1 = prepared.execute()
            out2 = prepared.execute()
            assert np.array_equal(ref.to_dense(), out1.to_dense())
            assert np.array_equal(out1.to_dense(), out2.to_dense())
        assert ex.runtime.metrics()["operands_pinned"] == 0

    def test_execute_after_close_raises(self):
        subs, ops = chain_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        prepared = ex.prepare(subs, *ops)
        prepared.close()
        prepared.close()  # idempotent
        with pytest.raises(PlanError):
            prepared.execute()

    def test_volatile_operands_not_hoisted(self):
        subs, ops = chain_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        volatile = tuple(range(len(ops)))
        with ex.prepare(subs, *ops, volatile=volatile) as prepared:
            assert prepared.tables_built == 0
            out = prepared.execute()
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        ref = base.contract(subs, *ops)
        assert np.array_equal(ref.to_dense(), out.to_dense())


class TestStepResultCache:
    def test_shared_cache_hits_across_calls(self):
        subs, ops = chain_operands()
        ex = NetworkExecutor(machine=DESKTOP)
        cache = StepResultCache()
        first = ex.contract(subs, *ops, cse_cache=cache)
        second = ex.contract(subs, *ops, cse_cache=cache)
        assert np.array_equal(first.to_dense(), second.to_dense())
        assert cache.stats()["hits"] > 0
        assert ex.metrics()["batch_cse_hits"] > 0

    def test_cache_bounded(self):
        cache = StepResultCache(maxsize=1)
        subs, ops = chain_operands()
        other_subs, other_ops = chain_operands(seed=50)
        ex = NetworkExecutor(machine=DESKTOP)
        ex.contract(subs, *ops, cse_cache=cache)
        ex.contract(other_subs, *other_ops, cse_cache=cache)
        assert cache.stats()["entries"] <= 1

    def test_metrics_expose_pass_counters(self):
        ex = NetworkExecutor(machine=DESKTOP)
        m = ex.metrics()
        for key in ("cse_hits", "cse_misses", "cse_hit_rate",
                    "batch_cse_hits", "dead_skips"):
            assert key in m
