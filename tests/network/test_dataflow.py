"""Unit tests for the dataflow framework over the network IR."""

from dataclasses import replace

import pytest

from repro.errors import PlanError
from repro.machine.specs import DESKTOP
from repro.network.dataflow import (
    AvailableExpressions,
    LiveValues,
    NnzIntervals,
    PlanGraph,
    ReachableOperands,
    canonical_pattern,
    expression_key,
    run_analysis,
)
from repro.network.ir import TensorNetwork
from repro.network.optimize import build_plan


def chain():
    network = TensorNetwork.parse(
        "ab,bc,cd->ad", [(12, 12)] * 3, nnz=[40, 40, 40]
    )
    return network, build_plan(network, DESKTOP, "dp")


def twins():
    network = TensorNetwork.parse(
        "ij,jk,lm,mn->il", [(14, 14)] * 4, nnz=[40, 40, 40, 40]
    )
    return network, build_plan(network, DESKTOP, "dp")


class TestPlanGraph:
    def test_lifts_plan_to_ssa(self):
        network, plan = chain()
        graph = PlanGraph.from_plan(plan, network)
        assert graph.n_inputs == 3
        assert len(graph.ops) == len(plan.steps)
        # the output value is defined by the last op
        assert graph.values[graph.output_value].origin == (
            "step", len(plan.steps) - 1,
        )
        # every input value knows its operand position
        positions = {
            v.origin[1] for v in graph.values[: graph.n_inputs]
        }
        assert positions == {0, 1, 2}

    def test_rejects_tampered_skeleton(self):
        network, plan = chain()
        steps = list(plan.steps)
        steps[0] = replace(steps[0], sub_out=steps[0].sub_out[::-1] + "z")
        bad = replace(plan, steps=tuple(steps))
        with pytest.raises(PlanError):
            PlanGraph.from_plan(bad, network)

    def test_value_of_step(self):
        network, plan = chain()
        graph = PlanGraph.from_plan(plan, network)
        v = graph.value_of_step(0)
        assert v.origin == ("step", 0)
        assert v.sub == plan.steps[0].sub_out


class TestLiveValues:
    def test_inputs_live_until_used(self):
        network, plan = chain()
        graph = PlanGraph.from_plan(plan, network)
        res = run_analysis(graph, LiveValues())
        # only the final output is live after the last step
        assert res.after[len(graph.ops) - 1] == frozenset(
            {graph.output_value}
        )
        # every op's inputs are live right before it runs
        for op in graph.ops:
            assert op.left in res.before[op.index]
            assert op.right in res.before[op.index]


class TestReachableOperands:
    def test_output_reaches_every_operand(self):
        network, plan = chain()
        graph = PlanGraph.from_plan(plan, network)
        reach = run_analysis(graph, ReachableOperands()).at_exit()
        assert reach[graph.output_value] == frozenset({0, 1, 2})

    def test_intermediate_reaches_its_subtree(self):
        network, plan = twins()
        graph = PlanGraph.from_plan(plan, network)
        reach = run_analysis(graph, ReachableOperands()).at_exit()
        subtree_sizes = sorted(
            len(reach[graph.value_of_step(k).id])
            for k in range(len(graph.ops) - 1)
        )
        assert subtree_sizes == [2, 2]


class TestExpressionKeys:
    def test_isomorphic_steps_share_a_key(self):
        network, plan = twins()
        graph = PlanGraph.from_plan(plan, network)
        k0 = expression_key(graph, graph.value_of_step(0).id)
        k1 = expression_key(graph, graph.value_of_step(1).id)
        assert k0 == k1

    def test_dtypes_split_the_key(self):
        network, plan = twins()
        graph = PlanGraph.from_plan(plan, network)
        dtypes = ("float64", "float64", "float32", "float32")
        k0 = expression_key(graph, graph.value_of_step(0).id, dtypes)
        k1 = expression_key(graph, graph.value_of_step(1).id, dtypes)
        assert k0 != k1

    def test_canonical_pattern_renames_letters(self):
        network, plan = twins()
        p0 = canonical_pattern(plan.steps[0])
        p1 = canonical_pattern(plan.steps[1])
        assert p0 == p1

    def test_available_expressions_record_first_definition(self):
        network, plan = twins()
        graph = PlanGraph.from_plan(plan, network)
        avail = run_analysis(graph, AvailableExpressions()).at_exit()
        k0 = expression_key(graph, graph.value_of_step(0).id)
        assert avail[k0] == 0  # first definition wins


class TestNnzIntervals:
    def test_bounds_bracket_declared_nnz(self):
        network, plan = chain()
        graph = PlanGraph.from_plan(plan, network)
        intervals = run_analysis(graph, NnzIntervals()).at_exit()
        for op in graph.ops:
            lo, hi = intervals[op.out]
            assert 0.0 <= lo <= hi <= graph.values[op.out].cells

    def test_empty_operand_pins_interval_to_zero(self):
        network = TensorNetwork.parse(
            "ij,jk,kl->il", [(10, 10)] * 3, nnz=[25, 0, 25]
        )
        plan = build_plan(network, DESKTOP, "dp")
        graph = PlanGraph.from_plan(plan, network)
        intervals = run_analysis(graph, NnzIntervals()).at_exit()
        lo, hi = intervals[graph.output_value]
        assert (lo, hi) == (0.0, 0.0)
