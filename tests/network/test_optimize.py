"""Golden-plan tests for the network path optimizers."""

import pytest

from repro.errors import PlanError
from repro.machine.specs import DESKTOP, SERVER
from repro.network.ir import TensorNetwork
from repro.network.optimize import (
    AUTO_DP_LIMIT,
    DP_OPERAND_LIMIT,
    build_plan,
    optimize_path,
    resolve_optimizer,
)

#: A fixed chain A(50,50) B(50,2) C(2,8) D(8,200) where the greedy
#: heuristic walks into a trap: it contracts the tiny middle pair first
#: and pays for it later, while the exhaustive DP search sweeps left to
#: right.  Golden paths frozen from the desktop cost model.
TRAP = dict(
    subscripts="ab,bc,cd,de->ae",
    shapes=[(50, 50), (50, 2), (2, 8), (8, 200)],
    nnz=[2500, 100, 8, 1600],
)


def trap_network():
    return TensorNetwork.parse(
        TRAP["subscripts"], TRAP["shapes"], nnz=TRAP["nnz"]
    )


class TestGoldenPaths:
    def test_left_is_left_to_right(self):
        net = trap_network()
        assert optimize_path(net, DESKTOP, "left") == [
            (0, 1), (0, 1), (0, 1)
        ]

    def test_greedy_golden_path(self):
        net = trap_network()
        assert optimize_path(net, DESKTOP, "greedy") == [
            (1, 2), (0, 2), (0, 1)
        ]

    def test_dp_golden_path(self):
        net = trap_network()
        assert optimize_path(net, DESKTOP, "dp") == [
            (0, 1), (0, 1), (0, 1)
        ]

    def test_dp_beats_greedy_on_trap(self):
        net = trap_network()
        greedy = build_plan(net, DESKTOP, "greedy")
        dp = build_plan(net, DESKTOP, "dp")
        assert dp.est_total_cost < 0.5 * greedy.est_total_cost

    def test_dp_never_worse_than_any_other(self):
        net = trap_network()
        dp = build_plan(net, DESKTOP, "dp").est_total_cost
        for opt in ("left", "greedy", "sparsity"):
            other = build_plan(net, DESKTOP, opt).est_total_cost
            assert dp <= other * (1 + 1e-9), opt

    def test_golden_paths_stable_across_machines(self):
        net = trap_network()
        assert (
            optimize_path(net, DESKTOP, "dp")
            == optimize_path(net, SERVER, "dp")
        )


class TestOptimizerResolution:
    def test_auto_small_network_uses_dp(self):
        net = trap_network()
        assert net.n_operands <= AUTO_DP_LIMIT
        assert resolve_optimizer("auto", net) == "dp"

    def test_auto_large_network_uses_sparsity(self):
        n = AUTO_DP_LIMIT + 1
        letters = "abcdefghijklm"
        subs = ",".join(
            letters[k] + letters[k + 1] for k in range(n)
        ) + f"->{letters[0]}{letters[n]}"
        shapes = [(4, 4)] * n
        net = TensorNetwork.parse(subs, shapes)
        assert resolve_optimizer("auto", net) == "sparsity"

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(PlanError, match="optimizer"):
            resolve_optimizer("quantum", trap_network())

    def test_dp_refuses_oversized_component(self):
        n = DP_OPERAND_LIMIT + 1
        letters = "abcdefghijklmn"
        subs = ",".join(
            letters[k] + letters[k + 1] for k in range(n)
        ) + f"->{letters[0]}{letters[n]}"
        net = TensorNetwork.parse(subs, [(3, 3)] * n)
        with pytest.raises(PlanError, match="operands"):
            optimize_path(net, DESKTOP, "dp")


class TestDisconnectedPlanning:
    def test_outer_product_single_step(self):
        net = TensorNetwork.parse("ij,kl->ijkl", [(3, 4), (5, 6)],
                                  nnz=[5, 7])
        plan = build_plan(net, DESKTOP, "dp")
        assert plan.path == [(0, 1)]
        assert plan.steps[0].kind == "outer"
        assert plan.steps[0].accumulator == ""

    def test_components_contract_before_combining(self):
        # Two 2-operand components: each contracts internally first,
        # then one outer product combines the results.
        net = TensorNetwork.parse(
            "ij,jk,lm,mn->ikln",
            [(4, 5), (5, 6), (7, 8), (8, 9)],
        )
        for opt in ("greedy", "dp", "sparsity"):
            plan = build_plan(net, DESKTOP, opt)
            kinds = [s.kind for s in plan.steps]
            assert kinds.count("outer") == 1, opt
            assert kinds[-1] == "outer", opt


class TestPlanShape:
    def test_pre_reduction_recorded(self):
        net = TensorNetwork.parse("ijm,jk->ki", [(3, 4, 5), (4, 6)])
        plan = build_plan(net, DESKTOP, "dp")
        assert plan.input_subs == ("ij", "jk")
        assert plan.final_sub in ("ik", "ki")

    def test_estimates_populated(self):
        plan = build_plan(trap_network(), DESKTOP, "dp")
        assert plan.est_total_cost > 0
        assert plan.est_peak_nnz > 0
        for step in plan.steps:
            assert step.est_nnz >= 0
            assert step.est_cost >= 0
            if step.kind == "contract":
                assert step.accumulator in ("dense", "sparse")
                assert step.tile >= 1
