"""NetworkExecutor plan cache under signature churn.

Streaming mutates operand nnz between calls, so the exact signature key
churns constantly.  These tests pin the cache's behavior under that
churn: LRU eviction stays bounded and structure-indexed, drift-tolerant
reuse absorbs small nnz movement, large movement re-prices, and
invalidation severs reuse completely.
"""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.network import NetworkExecutor

SUB = "ij,jk->ik"


def pair(nnz_a, nnz_b=60, seed=0):
    return (
        random_coo((24, 30), nnz=nnz_a, seed=seed),
        random_coo((30, 16), nnz=nnz_b, seed=seed + 1),
    )


def distinct_networks(n):
    """n structurally distinct problems (shape churn, not just nnz)."""
    out = []
    for i in range(n):
        rows = 16 + 4 * i
        out.append((
            random_coo((rows, 20), nnz=80, seed=100 + i),
            random_coo((20, 12), nnz=50, seed=200 + i),
        ))
    return out


class TestEviction:
    def test_lru_bound_holds_under_churn(self):
        ex = NetworkExecutor(machine=DESKTOP, plan_cache_size=4)
        for a, b in distinct_networks(10):
            ex.plan(SUB, [a, b])
        assert len(ex._plans) == 4
        assert len(ex._plan_structure) == 4

    def test_eviction_is_least_recently_used(self):
        ex = NetworkExecutor(machine=DESKTOP, plan_cache_size=2)
        nets = distinct_networks(3)
        ex.plan(SUB, list(nets[0]))
        ex.plan(SUB, list(nets[1]))
        ex.plan(SUB, list(nets[0]))  # refresh 0's recency
        ex.plan(SUB, list(nets[2]))  # evicts 1
        _, src0 = ex.plan(SUB, list(nets[0]))
        _, src1 = ex.plan(SUB, list(nets[1]))
        assert src0 == "cache"
        assert src1 == "optimizer"

    def test_evicted_structure_cannot_drift_hit(self):
        ex = NetworkExecutor(machine=DESKTOP, plan_cache_size=1)
        a, b = pair(100)
        ex.plan(SUB, [a, b])
        other = distinct_networks(1)[0]
        ex.plan(SUB, list(other))  # evicts the first structure
        drifted = pair(104)
        _, source = ex.plan(SUB, list(drifted))
        assert source == "optimizer"
        assert ex.plan_drift_hits == 0


class TestDrift:
    def test_small_nnz_drift_reuses_plan(self):
        ex = NetworkExecutor(machine=DESKTOP)
        ex.plan(SUB, list(pair(100)))
        plan, source = ex.plan(SUB, list(pair(108)))  # 8% drift
        assert source == "cache"
        assert ex.plan_drift_hits == 1
        # Rekeyed under the live signature: next call is an exact hit.
        _, again = ex.plan(SUB, list(pair(108)))
        assert again == "cache"
        assert ex.plan_drift_hits == 1

    def test_large_nnz_drift_reprices(self):
        ex = NetworkExecutor(machine=DESKTOP)
        ex.plan(SUB, list(pair(100)))
        _, source = ex.plan(SUB, list(pair(400)))  # 300% drift
        assert source == "optimizer"
        assert ex.plan_drift_repriced == 1
        assert ex.plan_drift_hits == 0

    def test_drift_disabled(self):
        ex = NetworkExecutor(machine=DESKTOP, drift_rtol=None)
        ex.plan(SUB, list(pair(100)))
        _, source = ex.plan(SUB, list(pair(101)))
        assert source == "optimizer"
        assert ex.plan_drift_hits == 0

    def test_drift_reuse_still_executes_correctly(self):
        ex = NetworkExecutor(machine=DESKTOP)
        ex.contract(SUB, *pair(100))
        a, b = pair(110, seed=5)
        out = ex.contract(SUB, a, b)
        expected = a.to_dense() @ b.to_dense()
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)


class TestInvalidation:
    def test_invalidate_all(self):
        ex = NetworkExecutor(machine=DESKTOP)
        for a, b in distinct_networks(3):
            ex.plan(SUB, [a, b])
        assert ex.invalidate_plans() == 3
        assert len(ex._plans) == 0
        assert len(ex._plan_structure) == 0
        assert ex.metrics()["network_plans_invalidated"] == 3

    def test_invalidate_by_predicate(self):
        ex = NetworkExecutor(machine=DESKTOP)
        nets = distinct_networks(2)
        p0, _ = ex.plan(SUB, list(nets[0]))
        ex.plan(SUB, list(nets[1]))
        dropped = ex.invalidate_plans(
            lambda key: key == p0.signature_key
        )
        assert dropped == 1
        _, source = ex.plan(SUB, list(nets[1]))
        assert source == "cache"

    def test_invalidated_plan_not_drift_reusable(self):
        ex = NetworkExecutor(machine=DESKTOP)
        ex.plan(SUB, list(pair(100)))
        assert ex.invalidate_plans() == 1
        _, source = ex.plan(SUB, list(pair(104)))
        assert source == "optimizer"
        assert ex.plan_drift_hits == 0

    def test_metrics_expose_churn_counters(self):
        ex = NetworkExecutor(machine=DESKTOP)
        ex.plan(SUB, list(pair(100)))
        ex.plan(SUB, list(pair(108)))
        ex.plan(SUB, list(pair(500)))
        ex.invalidate_plans()
        m = ex.metrics()
        assert m["network_plan_drift_hits"] == 1
        assert m["network_plan_drift_repriced"] == 1
        # Three entries: the original, the drift-rekeyed copy, and the
        # repriced plan — all dropped by the blanket invalidation.
        assert m["network_plans_invalidated"] == 3
