"""End-to-end tests for the network executor and its caches."""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import WorkspaceLimitError
from repro.machine.specs import DESKTOP
from repro.network import (
    NetworkExecutor,
    contract_network,
    default_executor,
    outer_product,
    sum_out_modes,
)
from repro.tensors.coo import COOTensor


def chain_tensors(seed=0):
    return (
        random_coo((20, 30), nnz=120, seed=seed),
        random_coo((30, 25), nnz=100, seed=seed + 1),
        random_coo((25, 8), nnz=60, seed=seed + 2),
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "optimizer", ["left", "greedy", "dp", "sparsity", "auto"]
    )
    def test_chain_matches_numpy(self, optimizer):
        a, b, c = chain_tensors()
        expected = np.einsum(
            "ij,jk,kl->il", a.to_dense(), b.to_dense(), c.to_dense()
        )
        out = NetworkExecutor(machine=DESKTOP).contract(
            "ij,jk,kl->il", a, b, c, optimizer=optimizer
        )
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)

    def test_outer_product_network(self):
        # Satellite regression: "ij,kl->ijkl" must produce the full
        # rank-4 outer product instead of being rejected.
        a = random_coo((3, 3), nnz=5, seed=4)
        b = random_coo((4, 4), nnz=7, seed=5)
        out = contract_network("ij,kl->ijkl", a, b)
        np.testing.assert_allclose(
            out.to_dense(),
            np.einsum("ij,kl->ijkl", a.to_dense(), b.to_dense()),
            rtol=1e-12,
        )

    def test_summed_and_permuted_output(self):
        a = random_coo((3, 4, 5), nnz=25, seed=6)
        b = random_coo((4, 6), nnz=13, seed=7)
        out = NetworkExecutor().contract("ijm,jk->ki", a, b)
        np.testing.assert_allclose(
            out.to_dense(),
            np.einsum("ijm,jk->ki", a.to_dense(), b.to_dense()),
            rtol=1e-9,
        )

    def test_baseline_methods_agree(self):
        a, b, c = chain_tensors(seed=9)
        fastcc = NetworkExecutor().contract("ij,jk,kl->il", a, b, c)
        for method in ("sparta", "co"):
            out = NetworkExecutor().contract(
                "ij,jk,kl->il", a, b, c, method=method
            )
            np.testing.assert_allclose(
                out.to_dense(), fastcc.to_dense(), rtol=1e-9
            )


class TestCaching:
    def test_warm_call_hits_both_cache_levels(self):
        a, b, c = chain_tensors(seed=12)
        executor = NetworkExecutor(machine=DESKTOP)
        _, cold = executor.contract(
            "ij,jk,kl->il", a, b, c, return_report=True
        )
        assert cold.plan_source == "optimizer"
        _, warm = executor.contract(
            "ij,jk,kl->il", a, b, c, return_report=True
        )
        # Acceptance criterion: the network plan replays from the LRU
        # and EVERY pairwise step hits the runtime's PlanCache.
        assert warm.plan_source == "cache"
        assert warm.steps, "expected pairwise steps"
        assert all(r.plan_source == "cache" for r in warm.steps)

    def test_plan_cache_lru_eviction(self):
        executor = NetworkExecutor(machine=DESKTOP, plan_cache_size=1)
        a, b, c = chain_tensors(seed=14)
        executor.contract("ij,jk,kl->il", a, b, c)
        d = random_coo((8, 8), nnz=10, seed=15)
        executor.contract("ij,jk->ik", d, d)  # evicts the chain plan
        _, report = executor.contract(
            "ij,jk,kl->il", a, b, c, return_report=True
        )
        assert report.plan_source == "optimizer"
        assert executor.plan_misses == 3

    def test_metrics_cover_both_levels(self):
        executor = NetworkExecutor(machine=DESKTOP)
        a, b, c = chain_tensors(seed=16)
        executor.contract("ij,jk,kl->il", a, b, c)
        executor.contract("ij,jk,kl->il", a, b, c)
        m = executor.metrics()
        assert m["network_plan_hits"] == 1
        assert m["network_plan_misses"] == 1
        assert m["network_plan_hit_rate"] == 0.5
        assert "pairwise_plan_cache_hits" in m

    def test_default_executor_shared_per_machine(self):
        assert default_executor(DESKTOP) is default_executor(DESKTOP)


class TestReporting:
    def test_peak_intermediate_tracked(self):
        a, b, c = chain_tensors(seed=18)
        _, report = NetworkExecutor().contract(
            "ij,jk,kl->il", a, b, c, return_report=True
        )
        inter_nnz = report.steps[0].output_nnz
        assert report.peak_intermediate_nnz >= inter_nnz
        assert report.peak_intermediate_bytes > 0
        assert report.output_nnz == report.steps[-1].output_nnz

    def test_summary_mentions_every_step(self):
        a, b, c = chain_tensors(seed=20)
        _, report = NetworkExecutor().contract(
            "ij,jk,kl->il", a, b, c, return_report=True
        )
        text = report.summary()
        assert "peak intermediate" in text
        assert text.count("step ") == len(report.steps)


class TestHelpers:
    def test_sum_out_modes(self):
        t = random_coo((4, 5, 6), nnz=30, seed=22)
        out = sum_out_modes(t, [1])
        np.testing.assert_allclose(
            out.to_dense(), t.to_dense().sum(axis=1), rtol=1e-12
        )

    def test_outer_product_values(self):
        a = random_coo((3, 2), nnz=4, seed=24)
        b = random_coo((2, 5), nnz=6, seed=25)
        out = outer_product(a, b)
        np.testing.assert_allclose(
            out.to_dense(),
            np.einsum("ij,kl->ijkl", a.to_dense(), b.to_dense()),
            rtol=1e-12,
        )

    def test_outer_product_limit_enforced(self):
        side = 1 << 14
        coords = np.stack([np.arange(side), np.arange(side)])
        values = np.ones(side)
        big = COOTensor(coords, values, (side, side), check=False)
        with pytest.raises(WorkspaceLimitError, match="outer product"):
            outer_product(big, big)
