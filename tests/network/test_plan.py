"""Tests for network plan signatures, serialization, and explain()."""

import json

import pytest

from repro.errors import PlanError
from repro.machine.specs import DESKTOP, SERVER
from repro.network.ir import TensorNetwork
from repro.network.optimize import build_plan
from repro.network.plan import NetworkPlan, NetworkSignature


def chain_network():
    return TensorNetwork.parse(
        "ij,jk,kl->il",
        [(2000, 600), (600, 500), (500, 40)],
        nnz=[24_000, 15_000, 1_000],
    )


class TestNetworkSignature:
    def test_key_is_stable_and_descriptive(self):
        sig = NetworkSignature.for_network(chain_network(), DESKTOP, "dp")
        assert sig.key == (
            "Eij,jk,kl->il|S2000x600;600x500;500x40|n24000,15000,1000"
            f"|M{DESKTOP.name};{DESKTOP.n_cores};{DESKTOP.l3_bytes};"
            f"{DESKTOP.l2_bytes_per_core};{DESKTOP.word_bytes}|Odp"
        )

    def test_key_distinguishes_machines(self):
        net = chain_network()
        a = NetworkSignature.for_network(net, DESKTOP, "dp").key
        b = NetworkSignature.for_network(net, SERVER, "dp").key
        assert a != b

    def test_key_distinguishes_nnz(self):
        a = NetworkSignature.for_network(chain_network(), DESKTOP, "dp")
        other = TensorNetwork.parse(
            "ij,jk,kl->il",
            [(2000, 600), (600, 500), (500, 40)],
            nnz=[24_000, 15_000, 999],
        )
        b = NetworkSignature.for_network(other, DESKTOP, "dp")
        assert a.key != b.key

    def test_signature_hashable(self):
        net = chain_network()
        a = NetworkSignature.for_network(net, DESKTOP, "dp")
        b = NetworkSignature.for_network(net, DESKTOP, "dp")
        assert a == b
        assert len({a, b}) == 1


class TestSerialization:
    def test_roundtrip_through_json_text(self):
        plan = build_plan(chain_network(), DESKTOP, "dp")
        restored = NetworkPlan.from_json(
            json.loads(json.dumps(plan.to_json()))
        )
        assert restored == plan
        assert restored.path == plan.path
        assert restored.steps[0].pairs == plan.steps[0].pairs

    def test_version_mismatch_rejected(self):
        payload = build_plan(chain_network(), DESKTOP, "dp").to_json()
        payload["version"] = 99
        with pytest.raises(PlanError, match="version"):
            NetworkPlan.from_json(payload)

    def test_payload_is_json_friendly(self):
        payload = build_plan(chain_network(), DESKTOP, "greedy").to_json()
        text = json.dumps(payload)
        assert '"signature_key"' in text
        assert '"steps"' in text


class TestExplain:
    def test_explain_lists_every_step(self):
        plan = build_plan(chain_network(), DESKTOP, "dp")
        text = plan.explain()
        assert "network plan: ij,jk,kl->il" in text
        assert "optimizer=dp" in text
        for k in range(plan.n_steps):
            assert f"step {k}:" in text

    def test_explain_reports_pre_reduction(self):
        net = TensorNetwork.parse("ijm,jk->ki", [(3, 4, 5), (4, 6)])
        text = build_plan(net, DESKTOP, "dp").explain()
        assert "pre-reduced operands" in text
        assert "ijm->ij" in text

    def test_explain_marks_outer_steps(self):
        net = TensorNetwork.parse("ij,kl->ijkl", [(3, 4), (5, 6)])
        text = build_plan(net, DESKTOP, "dp").explain()
        assert "[outer]" in text

    def test_step_subscripts_property(self):
        plan = build_plan(chain_network(), DESKTOP, "left")
        assert plan.steps[0].subscripts == "ij,jk->ik"
