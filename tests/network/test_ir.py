"""Unit tests for the tensor-network hypergraph IR."""

import pytest

from repro.data.random_tensors import random_coo
from repro.errors import PlanError, ShapeError
from repro.network.ir import (
    OperandMeta,
    TensorNetwork,
    parse_subscripts,
    subscript_counts,
)


class TestParseSubscripts:
    def test_basic(self):
        inputs, out = parse_subscripts("ij,jk->ik", 2)
        assert inputs == ["ij", "jk"]
        assert out == "ik"

    def test_index_in_three_operands_rejected(self):
        with pytest.raises(PlanError, match="3 operands"):
            parse_subscripts("ij,jk,jl->ikl", 3)

    def test_hadamard_rejected(self):
        with pytest.raises(PlanError, match="Hadamard"):
            parse_subscripts("ij,ij->ij", 2)

    def test_counts(self):
        assert subscript_counts(["ij", "jk", "kl"]) == {
            "i": 1, "j": 2, "k": 2, "l": 1,
        }


class TestOperandMeta:
    def test_from_tensor(self):
        t = random_coo((4, 5), nnz=7, seed=1)
        meta = OperandMeta.from_tensor("ij", t)
        assert meta.shape == (4, 5)
        assert meta.nnz == 7
        assert meta.cells == 20

    def test_declared_default_density(self):
        meta = OperandMeta.declared("ij", (100, 100))
        assert meta.nnz == 100  # 1% of 10_000 cells

    def test_nnz_exceeds_cells_rejected(self):
        with pytest.raises(ShapeError):
            OperandMeta("ij", (2, 2), 5)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            OperandMeta("ijk", (2, 2), 1)


class TestTensorNetwork:
    def test_parse_mixed_operand_kinds(self):
        t = random_coo((4, 5), nnz=6, seed=2)
        net = TensorNetwork.parse(
            "ij,jk,kl->il", [t, (5, 6), (6, 7)], nnz=[6, 10, 12]
        )
        assert net.n_operands == 3
        assert net.operands[0].nnz == 6
        assert net.operands[1].nnz == 10
        assert net.extents == {"i": 4, "j": 5, "k": 6, "l": 7}

    def test_conflicting_extents_rejected(self):
        with pytest.raises(ShapeError, match="conflicting extents"):
            TensorNetwork.parse("ij,jk->ik", [(4, 5), (6, 7)])

    def test_index_classification(self):
        net = TensorNetwork.parse("ijm,jk->ki", [(3, 4, 5), (4, 6)])
        assert net.contracted_indices == {"j"}
        assert net.kept_indices == {"k", "i"}
        assert net.summed_indices == {"m"}

    def test_reduced_inputs(self):
        net = TensorNetwork.parse("ijm,jk->ki", [(3, 4, 5), (4, 6)])
        assert net.reduced_inputs() == ["ij", "jk"]

    def test_connected_components(self):
        net = TensorNetwork.parse(
            "ij,jk,lm->ilm", [(2, 3), (3, 4), (5, 6)]
        )
        assert net.connected_components() == [(0, 1), (2,)]

    def test_fully_connected_single_component(self):
        net = TensorNetwork.parse(
            "ij,jk,kl->il", [(2, 3), (3, 4), (4, 5)]
        )
        assert net.connected_components() == [(0, 1, 2)]

    def test_validate_tensors_positional(self):
        net = TensorNetwork.parse("ij,jk->ik", [(4, 5), (5, 6)])
        good = [random_coo((4, 5), nnz=3, seed=3),
                random_coo((5, 6), nnz=3, seed=4)]
        net.validate_tensors(good)
        with pytest.raises(ShapeError, match="operand 1"):
            net.validate_tensors([good[0], random_coo((5, 7), nnz=3, seed=5)])
