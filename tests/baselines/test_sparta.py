"""Unit tests for the Sparta baseline (CM on chaining tables)."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.baselines.sparta import sparta_contract
from repro.data.random_tensors import random_operand_pair
from repro.errors import WorkspaceLimitError

from tests.conftest import reference_product, triples_to_dense


@pytest.fixture
def pair():
    return random_operand_pair(25, 30, 20, density_l=0.1, density_r=0.12, seed=4)


class TestCorrectness:
    def test_matches_reference(self, pair):
        left, right = pair
        l, r, v = sparta_contract(left, right)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, reference_product(left, right), rtol=1e-10)

    def test_hash_workspace_matches_dense(self, pair):
        left, right = pair
        ld, rd, vd = sparta_contract(left, right, workspace="dense")
        lh, rh, vh = sparta_contract(left, right, workspace="hash")
        a = triples_to_dense(ld, rd, vd, left.ext_extent, right.ext_extent)
        b = triples_to_dense(lh, rh, vh, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_empty_inputs(self, pair):
        left, right = pair
        left.ext, left.con, left.values = left.ext[:0], left.con[:0], left.values[:0]
        l, r, v = sparta_contract(left, right)
        assert v.size == 0

    def test_extent_mismatch(self, pair):
        left, right = pair
        right.con_extent = left.con_extent + 1
        with pytest.raises(ValueError):
            sparta_contract(left, right)

    def test_bad_workspace(self, pair):
        with pytest.raises(ValueError):
            sparta_contract(*pair, workspace="gpu")

    def test_dense_workspace_guard(self):
        left, right = random_operand_pair(
            8, 4, 8, density_l=0.2, density_r=0.2, seed=5
        )
        right.ext_extent = 1 << 30
        with pytest.raises(WorkspaceLimitError):
            sparta_contract(left, right, workspace="dense")

    def test_output_unique_coordinates(self, pair):
        left, right = pair
        l, r, v = sparta_contract(left, right)
        combined = l * right.ext_extent + r
        assert len(np.unique(combined)) == len(combined)


class TestCMCharacter:
    def test_cm_query_count(self, pair):
        """Sparta queries the right table once per left nonzero (the CM
        signature of Table 1)."""
        left, right = pair
        c = Counters()
        sparta_contract(left, right, counters=c)
        distinct_l = len(np.unique(left.ext))
        # distinct_l queries to HL + nnz_L queries to HR.
        assert c.hash_queries == distinct_l + left.nnz

    def test_data_volume_exceeds_co(self, pair):
        """CM re-fetches right slices; its volume must exceed CO's
        nnz_L + nnz_R whenever slices are shared."""
        left, right = pair
        c = Counters()
        sparta_contract(left, right, counters=c)
        assert c.data_volume > left.nnz  # re-fetched right payloads counted

    def test_chain_probes_counted(self, pair):
        left, right = pair
        c = Counters()
        sparta_contract(left, right, counters=c)
        assert c.probes > 0
