"""Unit tests for the multi-mode CSF CI baseline."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.baselines.taco_multimode import node_paths, taco_multimode_contract
from repro.data.random_tensors import random_coo
from repro.errors import PlanError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.tensors.dense import dense_contract


class TestNodePaths:
    def test_depth_zero(self):
        t = random_coo((5, 6), nnz=12, seed=1)
        csf = CSFTensor.from_coo(t)
        paths = node_paths(csf, 0)
        np.testing.assert_array_equal(paths[0], csf.fids[0])

    def test_paths_reconstruct_coordinates(self):
        t = random_coo((4, 5, 6), nnz=30, seed=2)
        csf = CSFTensor.from_coo(t)
        paths = node_paths(csf, 2)  # leaf level
        rebuilt = COOTensor(paths, csf.values, t.shape, check=False)
        assert rebuilt.allclose(t)

    def test_intermediate_depth(self):
        t = COOTensor([[1, 1, 2], [0, 3, 3], [2, 2, 1]], [1.0, 2.0, 3.0],
                      (3, 4, 3))
        csf = CSFTensor.from_coo(t)
        paths = node_paths(csf, 1)
        got = sorted(map(tuple, paths.T.tolist()))
        assert got == [(1, 0), (1, 3), (2, 3)]


class TestContraction:
    @pytest.mark.parametrize(
        "a_shape,b_shape,pairs",
        [
            ((6, 7), (7, 5), [(1, 0)]),
            ((4, 5, 6), (6, 3), [(2, 0)]),
            ((4, 5, 6), (5, 6, 3), [(1, 0), (2, 1)]),
            ((3, 4, 2, 5), (2, 5, 4), [(2, 0), (3, 1)]),
        ],
    )
    def test_matches_einsum(self, a_shape, b_shape, pairs):
        a = random_coo(a_shape, nnz=20, seed=3)
        b = random_coo(b_shape, nnz=15, seed=4)
        out = taco_multimode_contract(a, b, pairs)
        np.testing.assert_allclose(
            out.to_dense(), dense_contract(a, b, pairs), rtol=1e-9
        )

    def test_matches_linearized_taco(self):
        from repro import contract

        a = random_coo((5, 6, 4), nnz=30, seed=5)
        b = random_coo((4, 6, 7), nnz=30, seed=6)
        pairs = [(2, 0), (1, 1)]
        mm = contract(a, b, pairs, method="taco_mm")
        lin = contract(a, b, pairs, method="taco")
        assert mm.allclose(lin)

    def test_empty_inputs(self):
        a = COOTensor.empty((3, 4))
        b = random_coo((4, 5), nnz=5, seed=7)
        out = taco_multimode_contract(a, b, [(1, 0)])
        assert out.nnz == 0

    def test_scalar_output_rejected(self):
        a = random_coo((3, 4), nnz=5, seed=8)
        with pytest.raises(PlanError):
            taco_multimode_contract(a, a, [(0, 0), (1, 1)])

    def test_ci_cost_structure(self):
        """Queries scale as slices_L x slices_R — the CI signature."""
        a = random_coo((10, 8), nnz=40, seed=9)
        b = random_coo((8, 12), nnz=40, seed=10)
        c = Counters()
        taco_multimode_contract(a, b, [(1, 0)], counters=c)
        slices_l = len(np.unique(a.coords[0]))   # external mode of a
        slices_r = len(np.unique(b.coords[1]))   # external mode of b
        assert c.hash_queries == slices_l * (1 + slices_r)

    def test_scalar_workspace(self):
        a = random_coo((6, 5), nnz=15, seed=11)
        c = Counters()
        taco_multimode_contract(a, a, [(1, 1)], counters=c)
        assert c.workspace_cells == 1

    def test_duplicates_folded(self):
        a = COOTensor([[0, 0], [1, 1]], [1.0, 2.0], (2, 2))
        out = taco_multimode_contract(a, a, [(1, 1)])
        assert out.to_dense()[0, 0] == 9.0  # (1+2)^2
