"""Unit tests for the TACO-style baseline (CI on CSF)."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.baselines.taco import csf_matrix_from_operand, taco_contract
from repro.data.random_tensors import random_operand_pair

from tests.conftest import reference_product, triples_to_dense


@pytest.fixture
def pair():
    return random_operand_pair(20, 25, 22, density_l=0.12, density_r=0.1, seed=6)


class TestCorrectness:
    def test_matches_reference(self, pair):
        left, right = pair
        l, r, v = taco_contract(left, right)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, reference_product(left, right), rtol=1e-10)

    def test_empty_left(self, pair):
        left, right = pair
        left.ext, left.con, left.values = left.ext[:0], left.con[:0], left.values[:0]
        l, r, v = taco_contract(left, right)
        assert v.size == 0

    def test_extent_mismatch(self, pair):
        left, right = pair
        right.con_extent += 1
        with pytest.raises(ValueError):
            taco_contract(left, right)

    def test_duplicate_operand_entries_summed(self, pair):
        # CSF construction must fold duplicates like the other kernels.
        left, right = pair
        left2_ext = np.concatenate([left.ext, left.ext[:3]])
        left2_con = np.concatenate([left.con, left.con[:3]])
        left2_val = np.concatenate([left.values, left.values[:3]])
        from repro.core.plan import LinearizedOperand

        dup = LinearizedOperand(
            left2_ext, left2_con, left2_val, left.ext_extent, left.con_extent
        )
        l, r, v = taco_contract(dup, right)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        dup_dense = np.zeros((left.ext_extent, left.con_extent))
        np.add.at(dup_dense, (dup.ext, dup.con), dup.values)
        right_dense = np.zeros((right.ext_extent, right.con_extent))
        np.add.at(right_dense, (right.ext, right.con), right.values)
        np.testing.assert_allclose(got, dup_dense @ right_dense.T, rtol=1e-10)


class TestCSFConversion:
    def test_two_level(self, pair):
        left, _ = pair
        csf = csf_matrix_from_operand(left)
        assert csf.ndim == 2
        assert csf.nnz == left.nnz  # no duplicates in the generator

    def test_fibers_sorted(self, pair):
        left, _ = pair
        csf = csf_matrix_from_operand(left)
        for root in range(csf.nodes_at(0)):
            ids, _ = csf.root_slice(root)
            assert np.all(np.diff(ids) > 0)


class TestCICharacter:
    def test_volume_is_ci_scale(self, pair):
        """TACO's data volume must scale as L_slices * nnz_R (the CI row
        of Table 1) — vastly above CO's nnz_L + nnz_R."""
        left, right = pair
        c = Counters()
        taco_contract(left, right, counters=c)
        distinct_l = len(np.unique(left.ext))
        assert c.data_volume >= distinct_l * right.nnz
        assert c.data_volume > 5 * (left.nnz + right.nnz)

    def test_scalar_workspace(self, pair):
        c = Counters()
        taco_contract(*pair, counters=c)
        assert c.workspace_cells == 1
