"""Unit tests for the untiled CI/CM/CO reference schemes, including the
Table 1 counter validation."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.analysis.loop_order import measure_scheme
from repro.baselines.schemes import ci_contract, cm_contract, co_contract, contract_untiled
from repro.data.random_tensors import random_operand_pair
from repro.errors import WorkspaceLimitError

from tests.conftest import reference_product, triples_to_dense


@pytest.fixture
def pair():
    return random_operand_pair(30, 25, 28, density_l=0.08, density_r=0.1, seed=9)


class TestCorrectness:
    @pytest.mark.parametrize("scheme", ["ci", "cm", "co"])
    def test_matches_reference(self, pair, scheme):
        left, right = pair
        expected = reference_product(left, right)
        l, r, v = contract_untiled(scheme, left, right)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_schemes_agree_pairwise(self, pair):
        left, right = pair
        results = {
            s: contract_untiled(s, left, right) for s in ["ci", "cm", "co"]
        }
        dense = {
            s: triples_to_dense(*r, left.ext_extent, right.ext_extent)
            for s, r in results.items()
        }
        np.testing.assert_allclose(dense["ci"], dense["cm"], rtol=1e-10)
        np.testing.assert_allclose(dense["cm"], dense["co"], rtol=1e-10)

    def test_unknown_scheme(self, pair):
        with pytest.raises(ValueError):
            contract_untiled("cx", *pair)

    def test_empty_left(self, pair):
        left, right = pair
        left.ext, left.con, left.values = left.ext[:0], left.con[:0], left.values[:0]
        for fn in (ci_contract, cm_contract, co_contract):
            l, r, v = fn(left, right)
            assert v.size == 0

    def test_co_sparse_workspace_matches_dense(self, pair):
        left, right = pair
        ld, rd, vd = co_contract(left, right, workspace="dense")
        ls, rs, vs = co_contract(left, right, workspace="sparse")
        a = triples_to_dense(ld, rd, vd, left.ext_extent, right.ext_extent)
        b = triples_to_dense(ls, rs, vs, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_co_dense_guard(self):
        left, right = random_operand_pair(
            1 << 14, 4, 1 << 14, density_l=0.001, density_r=0.001, seed=1
        )
        with pytest.raises(WorkspaceLimitError):
            co_contract(left, right, workspace="dense", dense_guard=1 << 20)

    def test_co_auto_falls_back_to_sparse(self):
        left, right = random_operand_pair(
            1 << 10, 4, 1 << 10, density_l=0.01, density_r=0.01, seed=2
        )
        l, r, v = co_contract(left, right, workspace="auto", dense_guard=1 << 10)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, reference_product(left, right), rtol=1e-10)


class TestTable1Counters:
    """Measured counters must track the Table 1 closed forms."""

    def test_query_ordering(self, pair):
        left, right = pair
        measured = {
            s: measure_scheme(s, left, right).measured.hash_queries
            for s in ["ci", "cm", "co"]
        }
        assert measured["co"] < measured["cm"] < measured["ci"]

    def test_volume_ordering(self, pair):
        left, right = pair
        measured = {
            s: measure_scheme(s, left, right).measured.data_volume
            for s in ["ci", "cm", "co"]
        }
        assert measured["co"] < measured["cm"] < measured["ci"]

    def test_workspace_ordering(self, pair):
        left, right = pair
        measured = {
            s: measure_scheme(s, left, right).measured.workspace_cells
            for s in ["ci", "cm", "co"]
        }
        assert measured["ci"] == 1
        assert measured["cm"] == right.ext_extent
        assert measured["co"] == left.ext_extent * right.ext_extent

    def test_co_volume_exact(self, pair):
        # CO retrieves each input nonzero at most once (Table 1 bound);
        # exactly the nonzeros in contraction slices present on *both*
        # sides are fetched.
        left, right = pair
        sc = measure_scheme("co", left, right)
        common = np.intersect1d(left.con, right.con)
        expected = int(np.isin(left.con, common).sum()) + int(
            np.isin(right.con, common).sum()
        )
        assert sc.measured.data_volume == expected
        assert sc.measured.data_volume <= left.nnz + right.nnz

    def test_accum_updates_scheme_invariant(self, pair):
        # Section 3.4: the number of multiply-accumulates is identical
        # across loop orders.
        left, right = pair
        updates = {
            s: measure_scheme(s, left, right).measured.accum_updates
            for s in ["ci", "cm", "co"]
        }
        assert updates["ci"] == updates["cm"] == updates["co"]

    def test_measured_bounded_by_predictions(self, pair):
        # Predictions use extents; measurements use nonzero slices, so
        # measured <= predicted (with slack ~1) for queries and volume.
        left, right = pair
        for s in ["ci", "cm", "co"]:
            sc = measure_scheme(s, left, right)
            assert sc.measured.hash_queries <= sc.predicted.queries * 1.01 + 2
            assert sc.measured.data_volume <= sc.predicted.data_volume * 1.01 + 2

    def test_cm_queries_formula(self, pair):
        # CM: one query per left slice + one per left nonzero.
        left, right = pair
        sc = measure_scheme("cm", left, right)
        distinct_l = len(np.unique(left.ext))
        assert sc.measured.hash_queries == distinct_l + left.nnz

    def test_output_nnz_consistent(self, pair):
        left, right = pair
        counts = set()
        for s in ["ci", "cm", "co"]:
            c = Counters()
            contract_untiled(s, left, right, counters=c)
            counts.add(c.output_nnz)
        assert len(counts) == 1
