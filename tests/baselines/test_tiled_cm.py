"""Unit tests for the tiled-CM alternative (the ablation strawman)."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.baselines.schemes import cm_contract
from repro.baselines.tiled_cm import tiled_cm_contract
from repro.data.random_tensors import random_operand_pair

from tests.conftest import reference_product, triples_to_dense


@pytest.fixture
def pair():
    return random_operand_pair(30, 25, 40, density_l=0.1, density_r=0.1, seed=14)


class TestCorrectness:
    @pytest.mark.parametrize("tile_r", [1, 7, 16, 64, 1000])
    def test_matches_reference_any_tile(self, pair, tile_r):
        left, right = pair
        l, r, v = tiled_cm_contract(left, right, tile_r=tile_r)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, reference_product(left, right),
                                   rtol=1e-10)

    def test_agrees_with_untiled_cm(self, pair):
        left, right = pair
        a = triples_to_dense(
            *cm_contract(left, right), left.ext_extent, right.ext_extent
        )
        b = triples_to_dense(
            *tiled_cm_contract(left, right, tile_r=8),
            left.ext_extent, right.ext_extent,
        )
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_empty(self, pair):
        left, right = pair
        left.ext, left.con, left.values = left.ext[:0], left.con[:0], left.values[:0]
        _, _, v = tiled_cm_contract(left, right, tile_r=8)
        assert v.size == 0

    def test_validation(self, pair):
        left, right = pair
        with pytest.raises(ValueError):
            tiled_cm_contract(left, right, tile_r=0)
        right.con_extent += 1
        with pytest.raises(ValueError):
            tiled_cm_contract(left, right)


class TestCostStructure:
    def test_workspace_bounded_by_tile(self, pair):
        left, right = pair
        c = Counters()
        tiled_cm_contract(left, right, tile_r=8, counters=c)
        assert c.workspace_cells == 8

    def test_left_volume_multiplies_with_tiles(self, pair):
        """The design's weakness: the left tensor is re-read once per
        right tile (vs once total for untiled CM)."""
        left, right = pair
        volumes = {}
        for tile_r in (right.ext_extent, 8):
            c = Counters()
            tiled_cm_contract(left, right, tile_r=tile_r, counters=c)
            volumes[tile_r] = c.data_volume
        n_tiles = -(-right.ext_extent // 8)
        assert volumes[8] >= volumes[right.ext_extent] + (n_tiles - 1) * left.nnz * 0.5

    def test_queries_multiply_with_tiles(self, pair):
        left, right = pair
        c1, c8 = Counters(), Counters()
        tiled_cm_contract(left, right, tile_r=right.ext_extent, counters=c1)
        tiled_cm_contract(left, right, tile_r=8, counters=c8)
        assert c8.hash_queries > 2 * c1.hash_queries
