"""Unit tests for the improved-hashing Sparta variant."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.baselines.sparta import sparta_contract
from repro.baselines.sparta_improved import sparta_improved_contract
from repro.data.random_tensors import random_operand_pair
from repro.errors import WorkspaceLimitError

from tests.conftest import reference_product, triples_to_dense


@pytest.fixture
def pair():
    return random_operand_pair(25, 30, 20, density_l=0.1, density_r=0.12, seed=4)


class TestCorrectness:
    def test_matches_reference(self, pair):
        left, right = pair
        l, r, v = sparta_improved_contract(left, right)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, reference_product(left, right), rtol=1e-10)

    def test_agrees_with_stock_sparta(self, pair):
        left, right = pair
        a = triples_to_dense(
            *sparta_contract(left, right), left.ext_extent, right.ext_extent
        )
        b = triples_to_dense(
            *sparta_improved_contract(left, right),
            left.ext_extent, right.ext_extent,
        )
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_empty(self, pair):
        left, right = pair
        left.ext, left.con, left.values = left.ext[:0], left.con[:0], left.values[:0]
        _, _, v = sparta_improved_contract(left, right)
        assert v.size == 0

    def test_extent_mismatch(self, pair):
        left, right = pair
        right.con_extent += 1
        with pytest.raises(ValueError):
            sparta_improved_contract(left, right)

    def test_workspace_guard(self, pair):
        left, right = pair
        right.ext_extent = 1 << 30
        with pytest.raises(WorkspaceLimitError):
            sparta_improved_contract(left, right)


class TestCMCharacterPreserved:
    def test_same_query_structure_as_sparta(self, pair):
        """The improvement swaps the tables, not the loop order: query
        counts must match stock Sparta exactly."""
        left, right = pair
        c1, c2 = Counters(), Counters()
        sparta_contract(left, right, counters=c1)
        sparta_improved_contract(left, right, counters=c2)
        assert c1.hash_queries == c2.hash_queries
        assert c1.accum_updates == c2.accum_updates

    def test_no_chain_walks(self, pair):
        """Open addressing replaces chain walks with bounded probes."""
        left, right = pair
        c = Counters()
        sparta_improved_contract(left, right, counters=c)
        # Probes per query stays small under the 0.85 load limit.
        assert c.probes < 6 * c.hash_queries
