"""DeltaBatch: canonicalization semantics and format-preserving apply."""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import ConfigError, FormatError, ShapeError, StreamError
from repro.streaming import (
    DELETE,
    INSERT,
    UPDATE,
    DeltaBatch,
    MutationLog,
    apply_delta,
)
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.tensors.hicoo import HiCOOTensor

SHAPE = (8, 6)


def dense_of(tensor: COOTensor) -> np.ndarray:
    return tensor.to_dense()


class TestConstruction:
    def test_from_ops_round_trip(self):
        batch = DeltaBatch.from_ops(
            [("insert", (1, 2), 3.0), ("update", (4, 5), -1.0),
             ("delete", (0, 0), 9.9)],
            SHAPE,
        )
        assert batch.n_ops == 3
        assert batch.kinds.tolist() == [INSERT, UPDATE, DELETE]
        # Delete values are forced to zero regardless of what was passed.
        assert batch.values[2] == 0.0

    def test_unknown_op_name_rejected(self):
        with pytest.raises(ConfigError):
            DeltaBatch.from_ops([("upsert", (0, 0), 1.0)], SHAPE)

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(ShapeError):
            DeltaBatch.from_ops([("insert", (8, 0), 1.0)], SHAPE)

    def test_unknown_kind_int_rejected(self):
        with pytest.raises(FormatError):
            DeltaBatch(np.array([7], dtype=np.int8),
                       np.array([[0], [0]]), np.array([1.0]), SHAPE)

    def test_inserts_and_deletes_constructors(self):
        ins = DeltaBatch.inserts(np.array([[0, 1], [2, 3]]), [1.0, 2.0], SHAPE)
        assert ins.kinds.tolist() == [INSERT, INSERT]
        dels = DeltaBatch.deletes(np.array([[0], [2]]), SHAPE)
        assert dels.kinds.tolist() == [DELETE]


class TestCanonicalize:
    def test_sorted_unique_row_major(self):
        batch = DeltaBatch.from_ops(
            [("insert", (5, 1), 1.0), ("insert", (0, 3), 2.0),
             ("insert", (5, 1), 4.0)],
            SHAPE,
        )
        canon = batch.canonicalize()
        lin = canon.linearized()
        assert np.all(np.diff(lin) > 0)  # sorted, unique
        assert canon.n_ops == 2

    def test_inserts_accumulate(self):
        batch = DeltaBatch.from_ops(
            [("insert", (2, 2), 1.5), ("insert", (2, 2), 2.5)], SHAPE
        )
        canon = batch.canonicalize()
        assert canon.kinds.tolist() == [INSERT]
        assert canon.values[0] == pytest.approx(4.0)

    def test_update_overrides_then_accumulates(self):
        batch = DeltaBatch.from_ops(
            [("insert", (2, 2), 100.0), ("update", (2, 2), 1.0),
             ("insert", (2, 2), 0.5)],
            SHAPE,
        )
        canon = batch.canonicalize()
        assert canon.kinds.tolist() == [UPDATE]
        assert canon.values[0] == pytest.approx(1.5)

    def test_trailing_delete_wins(self):
        batch = DeltaBatch.from_ops(
            [("insert", (1, 1), 5.0), ("update", (1, 1), 2.0),
             ("delete", (1, 1), 0.0)],
            SHAPE,
        )
        canon = batch.canonicalize()
        assert canon.kinds.tolist() == [DELETE]

    def test_delete_then_insert_becomes_update(self):
        # Delete clears the slot; later inserts set (not add to) it.
        batch = DeltaBatch.from_ops(
            [("delete", (1, 1), 0.0), ("insert", (1, 1), 3.0)], SHAPE
        )
        canon = batch.canonicalize()
        assert canon.kinds.tolist() == [UPDATE]
        assert canon.values[0] == pytest.approx(3.0)

    def test_idempotent(self):
        batch = DeltaBatch.from_ops(
            [("insert", (0, 0), 1.0), ("delete", (3, 3), 0.0),
             ("insert", (0, 0), 2.0)],
            SHAPE,
        )
        once = batch.canonicalize()
        twice = once.canonicalize()
        assert np.array_equal(once.kinds, twice.kinds)
        assert np.array_equal(once.coords, twice.coords)
        assert np.array_equal(once.values, twice.values)

    def test_canonical_equivalent_to_original_on_apply(self):
        rng = np.random.default_rng(3)
        tensor = random_coo(SHAPE, nnz=12, seed=5)
        ops = []
        for _ in range(40):
            kind = ("insert", "update", "delete")[int(rng.integers(0, 3))]
            coord = (int(rng.integers(0, 8)), int(rng.integers(0, 6)))
            ops.append((kind, coord, float(rng.normal())))
        batch = DeltaBatch.from_ops(ops, SHAPE)
        a = batch.apply(tensor)
        b = batch.canonicalize().apply(tensor)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(a.values, b.values)


class TestApply:
    def test_dense_semantics(self):
        tensor = COOTensor(
            np.array([[0, 1], [0, 1]]), np.array([1.0, 2.0]), SHAPE
        )
        batch = DeltaBatch.from_ops(
            [("insert", (0, 0), 0.5), ("update", (1, 1), 9.0),
             ("insert", (2, 2), 3.0), ("delete", (0, 0), 0.0)],
            SHAPE,
        )
        out = batch.apply(tensor)
        expected = np.zeros(SHAPE)
        expected[1, 1] = 9.0
        expected[2, 2] = 3.0
        np.testing.assert_array_equal(dense_of(out), expected)

    def test_result_is_canonical(self):
        tensor = random_coo(SHAPE, nnz=10, seed=1)
        batch = DeltaBatch.from_ops([("insert", (0, 0), 1.0)], SHAPE)
        out = batch.apply(tensor)
        lin = out.linearized()
        assert np.all(np.diff(lin) > 0)

    def test_update_zero_keeps_explicit_entry(self):
        tensor = COOTensor(np.array([[2], [2]]), np.array([5.0]), SHAPE)
        batch = DeltaBatch.from_ops([("update", (2, 2), 0.0)], SHAPE)
        out = batch.apply(tensor)
        assert out.nnz == 1 and out.values[0] == 0.0

    def test_delete_removes_entry(self):
        tensor = COOTensor(np.array([[2], [2]]), np.array([5.0]), SHAPE)
        out = DeltaBatch.from_ops([("delete", (2, 2), 0.0)], SHAPE).apply(tensor)
        assert out.nnz == 0

    def test_shape_mismatch_rejected(self):
        tensor = random_coo((4, 4), nnz=3, seed=0)
        batch = DeltaBatch.from_ops([("insert", (0, 0), 1.0)], SHAPE)
        with pytest.raises(ShapeError):
            batch.apply(tensor)

    def test_apply_delta_preserves_csf_and_hicoo(self):
        coo = random_coo((8, 6, 4), nnz=20, seed=2)
        batch = DeltaBatch.from_ops(
            [("insert", (7, 5, 3), 2.0), ("delete", tuple(coo.coords[:, 0]), 0.0)],
            (8, 6, 4),
        )
        expected = batch.apply(coo)

        csf = CSFTensor.from_coo(coo, mode_order=(2, 0, 1))
        out_csf = apply_delta(csf, batch)
        assert isinstance(out_csf, CSFTensor)
        assert out_csf.mode_order == (2, 0, 1)
        np.testing.assert_allclose(out_csf.to_coo().to_dense(), expected.to_dense())

        hicoo = HiCOOTensor.from_coo(coo, block_bits=2)
        out_hicoo = apply_delta(hicoo, batch)
        assert isinstance(out_hicoo, HiCOOTensor)
        assert out_hicoo.block_bits == 2
        np.testing.assert_allclose(out_hicoo.to_coo().to_dense(), expected.to_dense())

    def test_apply_delta_rejects_foreign_type(self):
        batch = DeltaBatch.empty(SHAPE)
        with pytest.raises(StreamError):
            apply_delta(np.zeros(SHAPE), batch)

    def test_touched_linear_overapproximates(self):
        batch = DeltaBatch.from_ops(
            [("delete", (7, 5), 0.0), ("insert", (0, 0), 1.0)], SHAPE
        )
        touched = batch.touched_linear()
        assert touched.tolist() == sorted(touched.tolist())
        assert 7 * 6 + 5 in touched.tolist()  # absent delete still counts


class TestMutationLog:
    def test_sequences_are_monotonic(self):
        log = MutationLog(maxlen=4)
        seqs = [log.append(DeltaBatch.empty(SHAPE)) for _ in range(3)]
        assert seqs == [0, 1, 2]
        assert log.next_seq == 3

    def test_compaction_and_horizon(self):
        log = MutationLog(maxlen=2)
        for _ in range(5):
            log.append(DeltaBatch.empty(SHAPE))
        assert len(log) == 2
        assert log.compacted == 3
        assert [seq for seq, _ in log.since(3)] == [3, 4]
        with pytest.raises(StreamError):
            log.since(0)

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ConfigError):
            MutationLog(maxlen=0)
