"""Differential fuzz: delta-then-patch versus contract-on-mutated-tensor.

The streaming subsystem's core guarantee is that patching the cached
output after a delta is **bit-identical** to contracting the mutated
operands from scratch under the same pinned plan — on every detected
kernel backend, for random shapes, densities, and op mixes.  Each trial
drives one engine through a chain of deltas (letting its own staleness
pricing choose incremental or full per step) and rebuilds a reference
engine from the mutated tensors at every step.
"""

import numpy as np
import pytest

import repro
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.streaming import DeltaBatch, IncrementalEngine

N_TRIALS = 4
DELTAS_PER_TRIAL = 4


def random_delta(rng, shape, n_ops):
    kinds = ("insert", "update", "delete")
    ops = []
    for _ in range(n_ops):
        coord = tuple(int(rng.integers(0, s)) for s in shape)
        ops.append((kinds[int(rng.integers(0, 3))], coord,
                    float(rng.normal())))
    return DeltaBatch.from_ops(ops, shape)


def assert_bit_identical(out, ref, context):
    assert out.shape == ref.shape, context
    assert np.array_equal(out.coords, ref.coords), context
    assert np.array_equal(out.values, ref.values), context


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_delta_chain_differential(backend_name, trial):
    rng = np.random.default_rng(1000 + trial)
    rows = int(rng.integers(96, 220))
    inner = int(rng.integers(8, 24))
    cols = int(rng.integers(16, 48))
    left = random_coo((rows, inner), nnz=int(rng.integers(150, 500)),
                      seed=trial)
    right = random_coo((inner, cols), nnz=int(rng.integers(80, 300)),
                       seed=trial + 77)

    engine = IncrementalEngine(DESKTOP, backend=backend_name)
    engine.register("fuzz", left, right, [(1, 0)])
    plan = engine._state("fuzz").plan

    cur_left, cur_right = left, right
    for step in range(DELTAS_PER_TRIAL):
        side = "left" if rng.random() < 0.7 else "right"
        shape = cur_left.shape if side == "left" else cur_right.shape
        delta = random_delta(rng, shape, n_ops=int(rng.integers(1, 12)))
        stats = engine.apply_delta("fuzz", delta, side=side)
        if side == "left":
            cur_left = delta.apply(cur_left)
        else:
            cur_right = delta.apply(cur_right)

        reference = IncrementalEngine(DESKTOP, backend=backend_name)
        ref_out = reference.register(
            "ref", cur_left, cur_right, [(1, 0)], plan=plan
        )
        context = (f"backend={backend_name} trial={trial} step={step} "
                   f"side={side} mode={stats.mode}")
        assert_bit_identical(engine.result("fuzz"), ref_out, context)

    expected = repro.einsum("ij,jk->ik", cur_left, cur_right).to_dense()
    np.testing.assert_allclose(
        engine.result("fuzz").to_dense(), expected, rtol=1e-10, atol=1e-12
    )


def test_forced_paths_agree(backend_name):
    """force="incremental" and force="full" produce identical bytes."""
    rng = np.random.default_rng(5)
    left = random_coo((128, 12), nnz=300, seed=3)
    right = random_coo((12, 20), nnz=100, seed=4)

    inc = IncrementalEngine(DESKTOP, backend=backend_name)
    inc.register("s", left, right, [(1, 0)])
    full = IncrementalEngine(DESKTOP, backend=backend_name)
    full.register("s", left, right, [(1, 0)], plan=inc._state("s").plan)

    for step in range(3):
        delta = random_delta(rng, left.shape, n_ops=5)
        inc.apply_delta("s", delta, force="incremental")
        full.apply_delta("s", delta, force="full")
        assert_bit_identical(
            inc.result("s"), full.result("s"),
            f"backend={backend_name} step={step}",
        )
