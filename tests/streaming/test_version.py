"""DependencyTracker: tile-granular invalidation and freshness guards."""

import pytest

from repro.errors import StaleReadError, StreamError
from repro.streaming import (
    DependencyTracker,
    TensorVersion,
    close_stale_prepared,
    watch_prepared,
)


class TestVersions:
    def test_versions_start_at_zero_and_bump(self):
        tracker = DependencyTracker()
        assert tracker.version("a") == TensorVersion("a", 0)
        tracker.bump("a")
        tracker.bump("a")
        assert tracker.version("a").version == 2
        assert tracker.names() == ["a"]

    def test_version_value_semantics(self):
        assert TensorVersion("x", 1) == TensorVersion("x", 1)
        assert TensorVersion("x", 1) != TensorVersion("x", 2)
        assert hash(TensorVersion("x", 1)) == hash(TensorVersion("x", 1))


class TestInvalidation:
    def test_whole_tensor_dependency_hit_by_any_bump(self):
        tracker = DependencyTracker()
        tracker.register("lin", "linearized", {"a": None})
        assert tracker.bump("a", tiles=[3]) == ["lin"]
        assert not tracker.is_fresh("lin")

    def test_tile_granular_dependency_misses_disjoint_tiles(self):
        tracker = DependencyTracker()
        tracker.register("t5", "tiled_table", {"a": [5]})
        assert tracker.bump("a", tiles=[3, 7]) == []
        assert tracker.is_fresh("t5")
        assert tracker.bump("a", tiles=[5]) == ["t5"]

    def test_whole_tensor_bump_hits_tile_dependency(self):
        tracker = DependencyTracker()
        tracker.register("t5", "tiled_table", {"a": [5]})
        assert tracker.bump("a", tiles=None) == ["t5"]

    def test_unrelated_tensor_bump_is_invisible(self):
        tracker = DependencyTracker()
        tracker.register("t", "tiled_table", {"a": [1]})
        assert tracker.bump("b") == []
        assert tracker.is_fresh("t")

    def test_empty_deps_refused(self):
        # The FSTC702 condition: unreachable by any invalidation.
        tracker = DependencyTracker()
        with pytest.raises(StreamError):
            tracker.register("orphan", "output", {})

    def test_refresh_restores_freshness(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": None})
        tracker.bump("a")
        tracker.refresh("out")
        assert tracker.is_fresh("out")
        tracker.assert_fresh("out")  # must not raise

    def test_refresh_with_new_deps_rebinds(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": [1]})
        tracker.refresh("out", deps={"b": None})
        tracker.bump("a", tiles=[1])
        assert tracker.is_fresh("out")
        tracker.bump("b")
        assert not tracker.is_fresh("out")

    def test_stale_read_raises_with_version_drift(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": None})
        tracker.bump("a")
        tracker.bump("a")  # second bump: seen-version bookkeeping stays sane
        with pytest.raises(StaleReadError):
            tracker.assert_fresh("out")

    def test_unknown_artifact_operations_raise(self):
        tracker = DependencyTracker()
        for call in (tracker.is_fresh, tracker.assert_fresh, tracker.refresh):
            with pytest.raises(StreamError):
                call("ghost")

    def test_unregister(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": None})
        assert tracker.unregister("out") is True
        assert tracker.unregister("out") is False
        assert tracker.bump("a") == []

    def test_stats_and_stale_ids(self):
        tracker = DependencyTracker()
        tracker.register("x", "output", {"a": None})
        tracker.register("y", "output", {"b": None})
        tracker.bump("a")
        stats = tracker.stats()
        assert stats["artifacts"] == 2
        assert stats["stale"] == 1
        assert stats["bumps"] == 1
        assert stats["invalidations"] == 1
        assert tracker.stale_ids() == ["x"]


class _FakePrepared:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestPreparedIntegration:
    def test_watch_and_close_stale(self):
        tracker = DependencyTracker()
        fresh, stale = _FakePrepared(), _FakePrepared()
        fid = watch_prepared(tracker, fresh, {"a": None}, artifact_id="p:fresh")
        sid = watch_prepared(tracker, stale, {"b": None}, artifact_id="p:stale")
        tracker.bump("b")
        closed = close_stale_prepared(tracker, {fid: fresh, sid: stale})
        assert closed == [sid]
        assert stale.closed and not fresh.closed
        # The closed one is unregistered; the fresh one remains tracked.
        assert {a.artifact_id for a in tracker.artifacts()} == {fid}

    def test_default_artifact_id_is_identity_based(self):
        tracker = DependencyTracker()
        prepared = _FakePrepared()
        ident = watch_prepared(tracker, prepared, {"a": None})
        assert ident == f"prepared:{id(prepared)}"
