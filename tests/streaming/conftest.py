"""Fixtures for the streaming subsystem tests.

The differential fuzzer parameterizes over every *registered* kernel
backend (mirroring ``tests/backends/conftest.py``): backends that fail
feature detection on this host skip with the detection reason instead of
silently shrinking the matrix.
"""

import pytest

from repro.backends import backend_status, get_backend, known_backends


@pytest.fixture(params=known_backends())
def backend_name(request):
    available, reason = backend_status()[request.param]
    if not available:
        pytest.skip(f"backend {request.param!r} unavailable: {reason}")
    return request.param


@pytest.fixture
def backend(backend_name):
    return get_backend(backend_name)
