"""IncrementalEngine: patching, pricing, fallback, and invalidation."""

import numpy as np
import pytest

import repro
from repro.data.random_tensors import random_coo
from repro.errors import ConfigError, StaleReadError, StreamError
from repro.machine.specs import DESKTOP
from repro.runtime.executor import ContractionRuntime
from repro.streaming import DeltaBatch, IncrementalEngine

PAIRS = [(1, 0)]
LEFT_SHAPE = (256, 16)
RIGHT_SHAPE = (16, 32)


def make_engine(**kw):
    return IncrementalEngine(DESKTOP, **kw)


def register(engine, name="s", *, nnz_l=600, nnz_r=200, tile_size=64, **kw):
    left = random_coo(LEFT_SHAPE, nnz=nnz_l, seed=10)
    right = random_coo(RIGHT_SHAPE, nnz=nnz_r, seed=11)
    out = engine.register(name, left, right, PAIRS, tile_size=tile_size, **kw)
    return left, right, out


def one_tile_delta(left, n=4, seed=0):
    """A batch confined to the row block of left's smallest row index."""
    rng = np.random.default_rng(seed)
    victim = left.coords[:, int(np.argmin(left.coords[0]))]
    row = int(victim[0]) - int(victim[0]) % 64  # tile-aligned base
    ops = [
        ("insert", (row + int(rng.integers(0, 64)),
                    int(rng.integers(0, LEFT_SHAPE[1]))), float(i + 1))
        for i in range(n)
    ]
    return DeltaBatch.from_ops(ops, LEFT_SHAPE)


class TestRegister:
    def test_initial_output_matches_einsum(self):
        engine = make_engine()
        left, right, out = register(engine)
        expected = repro.einsum("ij,jk->ik", left, right).to_dense()
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-12)

    def test_double_register_refused(self):
        engine = make_engine()
        register(engine)
        with pytest.raises(StreamError):
            register(engine)

    def test_unknown_stream_rejected(self):
        engine = make_engine()
        with pytest.raises(StreamError):
            engine.result("ghost")

    def test_artifacts_registered_per_stream(self):
        engine = make_engine()
        register(engine)
        kinds = sorted(a.kind for a in engine.tracker.artifacts())
        assert kinds == [
            "linearized", "linearized", "output", "tiled_table", "tiled_table",
        ]

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            make_engine(staleness_threshold=0.0)
        with pytest.raises(ConfigError):
            make_engine(staleness_threshold=1.5)
        with pytest.raises(ConfigError):
            make_engine(log_maxlen=0)


class TestApplyDelta:
    def test_incremental_matches_fresh_register(self):
        engine = make_engine()
        left, right, _ = register(engine)
        delta = one_tile_delta(left)
        stats = engine.apply_delta("s", delta, force="incremental")
        assert stats.mode == "incremental"

        reference = make_engine()
        ref_out = reference.register(
            "ref", delta.apply(left), right, PAIRS,
            plan=engine._state("s").plan,
        )
        out = engine.result("s")
        assert np.array_equal(out.coords, ref_out.coords)
        assert np.array_equal(out.values, ref_out.values)

    def test_small_delta_prices_incremental(self):
        engine = make_engine()
        left, _, _ = register(engine)
        stats = engine.apply_delta("s", one_tile_delta(left))
        assert stats.mode == "incremental"
        assert stats.tiles_touched == 1
        assert 0.0 < stats.modeled_fraction <= engine.staleness_threshold

    def test_sweeping_delta_falls_back_to_full(self):
        engine = make_engine()
        left, right, _ = register(engine)
        rng = np.random.default_rng(2)
        ops = [
            ("insert", (int(r), int(c)), 1.0)
            for r, c in zip(rng.integers(0, LEFT_SHAPE[0], 200),
                            rng.integers(0, LEFT_SHAPE[1], 200))
        ]
        delta = DeltaBatch.from_ops(ops, LEFT_SHAPE)
        stats = engine.apply_delta("s", delta)
        assert stats.mode == "full"
        expected = repro.einsum("ij,jk->ik", delta.apply(left), right).to_dense()
        np.testing.assert_allclose(engine.result("s").to_dense(), expected,
                                   rtol=1e-12)

    def test_right_side_delta(self):
        engine = make_engine()
        left, right, _ = register(engine)
        delta = DeltaBatch.from_ops(
            [("insert", (0, 0), 2.0), ("update", (3, 1), -1.0)], RIGHT_SHAPE
        )
        stats = engine.apply_delta("s", delta, side="right")
        assert stats.side == "right"
        expected = repro.einsum("ij,jk->ik", left, delta.apply(right)).to_dense()
        np.testing.assert_allclose(engine.result("s").to_dense(), expected,
                                   rtol=1e-12)

    def test_incremental_right_side_bit_identical(self):
        engine = make_engine()
        left, right, _ = register(engine)
        delta = DeltaBatch.from_ops([("insert", (5, 7), 1.25)], RIGHT_SHAPE)
        engine.apply_delta("s", delta, side="right", force="incremental")
        reference = make_engine()
        ref_out = reference.register(
            "ref", left, delta.apply(right), PAIRS,
            plan=engine._state("s").plan,
        )
        out = engine.result("s")
        assert np.array_equal(out.coords, ref_out.coords)
        assert np.array_equal(out.values, ref_out.values)

    def test_delta_chain_stays_correct(self):
        engine = make_engine()
        left, right, _ = register(engine)
        current = left
        for seed in range(5):
            delta = one_tile_delta(current, seed=seed)
            engine.apply_delta("s", delta)
            current = delta.apply(current)
        expected = repro.einsum("ij,jk->ik", current, right).to_dense()
        np.testing.assert_allclose(engine.result("s").to_dense(), expected,
                                   rtol=1e-12)

    def test_noop_delta(self):
        engine = make_engine()
        register(engine)
        stats = engine.apply_delta("s", DeltaBatch.empty(LEFT_SHAPE))
        assert stats.mode == "noop"
        assert stats.tiles_touched == 0

    def test_force_and_side_validated(self):
        engine = make_engine()
        left, _, _ = register(engine)
        with pytest.raises(ConfigError):
            engine.apply_delta("s", one_tile_delta(left), side="middle")
        with pytest.raises(ConfigError):
            engine.apply_delta("s", one_tile_delta(left), force="maybe")

    def test_mutation_log_records_sequence(self):
        engine = make_engine()
        left, _, _ = register(engine)
        s0 = engine.apply_delta("s", one_tile_delta(left, seed=0))
        s1 = engine.apply_delta("s", one_tile_delta(left, seed=1))
        assert (s0.seq, s1.seq) == (0, 1)
        assert engine.log("s", "left").next_seq == 2
        assert engine.log("s", "right").next_seq == 0


class TestInvalidation:
    def test_stale_read_guard_between_bump_and_refresh(self):
        engine = make_engine()
        register(engine)
        engine.tracker.bump("s.left")
        with pytest.raises(StaleReadError):
            engine.result("s")

    def test_apply_delta_refreshes_artifacts(self):
        engine = make_engine()
        left, _, _ = register(engine)
        engine.apply_delta("s", one_tile_delta(left))
        assert engine.tracker.stale_ids() == []
        engine.result("s")  # guarded read passes

    def test_invalidate_releases_artifacts(self):
        engine = make_engine()
        register(engine)
        assert engine.invalidate("s") == 5
        assert engine.invalidate("s") == 0  # idempotent
        with pytest.raises(StreamError):
            engine.result("s")

    def test_runtime_operand_caches_invalidated(self):
        runtime = ContractionRuntime(machine=DESKTOP)
        engine = make_engine(runtime=runtime)
        left, right, _ = register(engine)
        # Warm the runtime's operand caches for the *registered* operand
        # object, then check the delta's hook actually dropped it.
        registered = engine._state("s").left
        runtime.contract(registered, right, PAIRS)
        assert runtime.invalidate_operand(registered) is True
        runtime.contract(registered, right, PAIRS)  # re-warm
        engine.apply_delta("s", one_tile_delta(left))
        assert runtime.invalidate_operand(registered) is False  # dropped


class TestMetrics:
    def test_metrics_shape(self):
        engine = make_engine()
        left, _, _ = register(engine)
        engine.apply_delta("s", one_tile_delta(left))
        m = engine.metrics()
        assert m["streams"] == ["s"]
        assert m["deltas_applied"] == 1
        assert m["incremental"] + m["full"] == 1
        assert m["tracker"]["artifacts"] == 5
        assert 0.0 <= m["mean_modeled_fraction"] <= 1.0
