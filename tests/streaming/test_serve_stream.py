"""Streaming through the serve layer: requests, affinity, invalidation.

The in-process :class:`ContractionService` tests cover the request
protocol and metrics; one small spawned fleet covers the router's
``invalidate_stream`` broadcast (every shard must release a stream's
state, because respawns and ring rebalances can leave orphaned copies
on shards that no longer own the stream).
"""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import ConfigError
from repro.machine.specs import DESKTOP
from repro.serve import (
    STREAM,
    ContractionService,
    Request,
    ServiceConfig,
    ShardedConfig,
    ShardRouter,
    merge_metrics_json,
)
from repro.streaming import DeltaBatch

SHAPE_L, SHAPE_R = (128, 12), (12, 24)
PAIRS = [(1, 0)]


def operands(seed=0):
    return (
        random_coo(SHAPE_L, nnz=300, seed=seed),
        random_coo(SHAPE_R, nnz=100, seed=seed + 1),
    )


def small_delta():
    return DeltaBatch.from_ops(
        [("insert", (3, 3), 1.0), ("delete", (0, 0), 0.0)], SHAPE_L
    )


class TestStreamRequest:
    def test_constructor_validation(self):
        left, right = operands()
        with pytest.raises(ConfigError):
            Request.stream("s", "upsert")
        with pytest.raises(ConfigError):
            Request.stream("", "query")
        with pytest.raises(ConfigError):
            Request.stream("s", "register", left=left)  # right/pairs missing
        with pytest.raises(ConfigError):
            Request.stream("s", "delta")  # no payload
        with pytest.raises(ConfigError):
            Request.stream("s", "delta", delta=small_delta(), side="top")

    def test_affinity_is_stream_name(self):
        a = Request.stream("s", "query")
        b = Request.stream("s", "delta", delta=small_delta())
        c = Request.stream("other", "query")
        assert a.kind == STREAM
        assert a.affinity_key(DESKTOP) == b.affinity_key(DESKTOP)
        assert a.affinity_key(DESKTOP) != c.affinity_key(DESKTOP)

    def test_name_defaults_to_stream_name(self):
        assert Request.stream("s", "query").name == "s"
        assert Request.stream("s", "query", name="q7").name == "q7"


class TestServiceStream:
    @pytest.fixture()
    def service(self):
        config = ServiceConfig(queue_capacity=16, policy="reject", n_workers=1)
        with ContractionService(machine=DESKTOP, config=config) as svc:
            yield svc

    def test_register_delta_query_invalidate(self, service):
        left, right = operands()
        reg = service.submit(
            Request.stream("s", "register", left=left, right=right, pairs=PAIRS)
        ).result(30.0)
        assert reg.status == "ok"

        delta = small_delta()
        dresp = service.submit(
            Request.stream("s", "delta", delta=delta)
        ).result(30.0)
        assert dresp.status == "ok"
        assert dresp.plan_source in ("incremental", "full")

        qresp = service.submit(Request.stream("s", "query")).result(30.0)
        assert qresp.status == "ok"
        assert np.array_equal(qresp.result.coords, dresp.result.coords)
        assert np.array_equal(qresp.result.values, dresp.result.values)

        iresp = service.submit(Request.stream("s", "invalidate")).result(30.0)
        assert iresp.status == "ok"
        assert iresp.plan_source == "invalidated:5"

    def test_delta_output_matches_mutated_contract(self, service):
        left, right = operands(seed=9)
        service.submit(
            Request.stream("s", "register", left=left, right=right, pairs=PAIRS)
        ).result(30.0)
        delta = small_delta()
        out = service.submit(
            Request.stream("s", "delta", delta=delta)
        ).result(30.0).result
        direct = service.submit(
            Request.pairwise(delta.apply(left), right, PAIRS)
        ).result(30.0).result
        np.testing.assert_allclose(out.to_dense(), direct.to_dense(),
                                   rtol=1e-12)

    def test_invalidate_stream_is_idempotent_and_queue_bypassing(self, service):
        assert service.invalidate_stream("ghost") == 0
        left, right = operands(seed=4)
        service.submit(
            Request.stream("s", "register", left=left, right=right, pairs=PAIRS)
        ).result(30.0)
        assert service.invalidate_stream("s") == 5
        assert service.invalidate_stream("s") == 0

    def test_metrics_include_streaming_section(self, service):
        left, right = operands(seed=2)
        service.submit(
            Request.stream("s", "register", left=left, right=right, pairs=PAIRS)
        ).result(30.0)
        service.submit(
            Request.stream("s", "delta", delta=small_delta())
        ).result(30.0)
        payload = service.metrics_json()
        streaming = payload["streaming"]
        assert streaming["streams"] == ["s"]
        assert streaming["deltas_applied"] == 1

    def test_streaming_sections_merge_associatively(self, service):
        left, right = operands(seed=3)
        service.submit(
            Request.stream("a", "register", left=left, right=right, pairs=PAIRS)
        ).result(30.0)
        payload = service.metrics_json()
        other = {
            "streaming": {
                "streams": ["b"],
                "deltas_applied": 3,
                "incremental": 2,
                "full": 1,
                "incremental_seconds": 0.5,
                "full_seconds": 0.25,
                "mean_modeled_fraction": 0.1,
                "tracker": {"tensors": 2, "artifacts": 5, "stale": 0,
                            "bumps": 3, "invalidations": 1},
            }
        }
        merged = merge_metrics_json([payload, other])
        assert merged["streaming"]["streams"] == ["a", "b"]
        assert merged["streaming"]["deltas_applied"] == 3
        assert merged["streaming"]["tracker"]["artifacts"] == 10


class TestRouterStream:
    def test_invalidate_fans_out_to_every_shard(self):
        left, right = operands(seed=6)
        service = ServiceConfig(queue_capacity=16, policy="reject", n_workers=1)
        config = ShardedConfig(n_shards=2, service=service)
        with ShardRouter(machine=DESKTOP, config=config) as router:
            reg = router.submit(
                Request.stream(
                    "s", "register", left=left, right=right, pairs=PAIRS
                )
            ).result(60.0)
            assert reg.status == "ok"

            # Affinity: every op on the stream lands on the same shard.
            key = Request.stream("s", "query").affinity_key(DESKTOP)
            owner = router.ring.route(key)
            q = router.submit(Request.stream("s", "query")).result(60.0)
            assert q.status == "ok"

            released = router.invalidate_stream("s")
            assert set(released) == {0, 1}
            # Exactly the owner shard held the stream's five artifacts.
            assert released[owner] == 5
            assert sum(released.values()) == 5

            # After the broadcast, a query finds no registered stream.
            gone = router.submit(Request.stream("s", "query")).result(60.0)
            assert gone.status == "failed"
