"""Unit tests for the FSTC code-registry/docs consistency audit."""

from repro.staticcheck.diagnostics import CODES
from repro.staticcheck.registry_audit import (
    audit_code_registry,
    documented_codes,
    duplicate_codes,
    find_docs,
)


def catalogue_text(overrides=None, extra="", skip=()):
    """Render a synthetic catalogue covering the live registry."""
    overrides = overrides or {}
    lines = []
    for code, (severity, title) in sorted(CODES.items()):
        if code in skip:
            continue
        sev = overrides.get(code, severity)
        lines.append(f"**{code}** ({sev}) — {title}.")
    return "\n\n".join(lines) + ("\n\n" + extra if extra else "\n")


def write_docs(tmp_path, text):
    path = tmp_path / "staticcheck.md"
    path.write_text(text)
    return path


class TestCleanCatalogue:
    def test_full_catalogue_is_clean(self, tmp_path):
        docs = write_docs(tmp_path, catalogue_text())
        assert audit_code_registry(docs) == []

    def test_repo_docs_are_clean(self):
        docs = find_docs()
        assert docs is not None
        assert audit_code_registry(docs) == []


class TestDrift:
    def test_unregistered_documented_code(self, tmp_path):
        docs = write_docs(
            tmp_path, catalogue_text(extra="**FSTC999** (error) — ghost.")
        )
        diags = audit_code_registry(docs)
        assert len(diags) == 1
        assert diags[0].code == "FSTC105"
        assert "FSTC999" in diags[0].message
        assert "missing from the registry" in diags[0].message

    def test_undocumented_registered_code(self, tmp_path):
        docs = write_docs(tmp_path, catalogue_text(skip=("FSTC501",)))
        diags = audit_code_registry(docs)
        assert len(diags) == 1
        assert "FSTC501" in diags[0].message
        assert "not documented" in diags[0].message

    def test_severity_mismatch(self, tmp_path):
        docs = write_docs(
            tmp_path, catalogue_text(overrides={"FSTC506": "error"})
        )
        diags = audit_code_registry(docs)
        assert len(diags) == 1
        assert "FSTC506" in diags[0].message
        assert "documented as 'error'" in diags[0].message

    def test_duplicate_entry(self, tmp_path):
        docs = write_docs(
            tmp_path,
            catalogue_text(extra="**FSTC501** (error) — duplicate entry."),
        )
        diags = audit_code_registry(docs)
        assert len(diags) == 1
        assert "FSTC501" in diags[0].message
        assert "2 catalogue entries" in diags[0].message


class TestParsers:
    def test_documented_codes_parses_severities(self):
        text = "**FSTC001** (error) — a.\n**FSTC006** (warning) — b.\n"
        assert documented_codes(text) == {
            "FSTC001": "error", "FSTC006": "warning",
        }

    def test_duplicate_codes_counts(self):
        text = (
            "**FSTC001** (error) — a.\n"
            "**FSTC001** (error) — again.\n"
            "**FSTC006** (warning) — b.\n"
        )
        assert duplicate_codes(text) == {"FSTC001": 2}

    def test_find_docs_missing_layout(self, tmp_path):
        assert find_docs(tmp_path / "nowhere") is None
        assert audit_code_registry(None) is not None  # repo layout exists
