"""Unit tests for the FSTC6xx autotune-configuration lints."""

from types import SimpleNamespace

import pytest

from repro.autotune import TunerConfig
from repro.staticcheck import has_errors, lint_autotune_config
from repro.staticcheck.diagnostics import CODES


def config(**overrides) -> SimpleNamespace:
    # Duck-typed like the FSTC3xx lints: a plain namespace is the
    # documented stand-in for TunerConfig / ServiceConfig.
    base = dict(
        explore_rate=0.1, min_trials=3, promote_margin=0.05,
        state_path="/tmp/state.json",
    )
    base.update(overrides)
    return SimpleNamespace(**base)


def codes(findings):
    return [f.code for f in findings]


class TestRegistry:
    def test_codes_are_registered(self):
        assert CODES["FSTC601"][0] == "error"
        assert CODES["FSTC602"][0] == "warning"
        assert CODES["FSTC603"][0] == "error"
        assert CODES["FSTC604"][0] == "warning"


class TestExploreRate:
    def test_clean_config_has_no_findings(self):
        assert lint_autotune_config(config()) == []

    @pytest.mark.parametrize("rate", [0.0, -0.5])
    def test_non_positive_rate_is_an_error(self, rate):
        findings = lint_autotune_config(config(explore_rate=rate))
        assert codes(findings) == ["FSTC601"]
        assert has_errors(findings)
        assert "never explore" in findings[0].message

    def test_excessive_rate_is_an_error(self):
        findings = lint_autotune_config(config(explore_rate=0.75))
        assert codes(findings) == ["FSTC601"]
        assert "workload" in findings[0].message

    def test_half_rate_is_the_boundary(self):
        assert lint_autotune_config(config(explore_rate=0.5)) == []


class TestPersistenceAndGates:
    def test_unpersisted_state_warns(self):
        findings = lint_autotune_config(config(state_path=None))
        assert codes(findings) == ["FSTC602"]
        assert not has_errors(findings)

    def test_zero_margin_is_an_error(self):
        findings = lint_autotune_config(config(promote_margin=0.0))
        assert codes(findings) == ["FSTC603"]
        assert has_errors(findings)

    def test_low_trials_floor_warns(self):
        findings = lint_autotune_config(config(min_trials=1))
        assert codes(findings) == ["FSTC604"]
        assert not has_errors(findings)

    def test_everything_wrong_fires_everything(self):
        findings = lint_autotune_config(config(
            explore_rate=0.9, state_path=None,
            promote_margin=-0.1, min_trials=0,
        ))
        assert codes(findings) == [
            "FSTC601", "FSTC602", "FSTC603", "FSTC604",
        ]


class TestDuckTyping:
    def test_disabled_tuner_lints_clean(self):
        bad = config(autotune=False, explore_rate=5.0, state_path=None)
        assert lint_autotune_config(bad) == []

    def test_prefixed_spellings_are_read(self):
        # ServiceConfig carries autotune_-prefixed knobs.
        service_like = SimpleNamespace(
            autotune=True, autotune_explore_rate=0.9,
            autotune_state_path=None, autotune_promote_margin=0.05,
            autotune_min_trials=3,
        )
        assert codes(lint_autotune_config(service_like)) == [
            "FSTC601", "FSTC602",
        ]

    def test_real_tuner_config_lints_clean(self, tmp_path):
        cfg = TunerConfig(state_path=str(tmp_path / "s.json"))
        assert lint_autotune_config(cfg) == []

    def test_location_is_threaded_through(self):
        findings = lint_autotune_config(
            config(state_path=None), location="service config"
        )
        assert findings[0].location == "service config"
