"""Unit tests for the FSTC7xx streaming lints."""

from types import SimpleNamespace

from repro.staticcheck import (
    audit_code_registry,
    lint_dependency_tracker,
    lint_stream_config,
)
from repro.staticcheck.diagnostics import CODES
from repro.streaming import DependencyTracker, IncrementalEngine


def codes(findings):
    return sorted(d.code for d in findings)


def config(**knobs) -> SimpleNamespace:
    # Duck-typed stand-in, like the FSTC3xx/FSTC6xx lint tests.
    return SimpleNamespace(**knobs)


class TestTrackerLint:
    def test_clean_tracker_has_no_findings(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": None})
        assert lint_dependency_tracker(tracker) == []

    def test_stale_registered_artifact_is_fstc701(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": None})
        tracker.bump("a")
        findings = lint_dependency_tracker(tracker, location="unit test")
        assert codes(findings) == ["FSTC701"]
        assert CODES["FSTC701"][0] == "error"
        assert "unit test" in findings[0].location

    def test_refresh_clears_fstc701(self):
        tracker = DependencyTracker()
        tracker.register("out", "output", {"a": None})
        tracker.bump("a")
        tracker.refresh("out")
        assert lint_dependency_tracker(tracker) == []

    def test_depless_artifact_is_fstc702(self):
        # The real tracker refuses empty deps at register time, so the
        # lint targets duck-typed stand-ins (hand-rolled trackers).
        orphan = SimpleNamespace(
            artifact_id="x", kind="output", deps={}, fresh=True
        )
        fake = SimpleNamespace(artifacts=lambda: [orphan])
        findings = lint_dependency_tracker(fake)
        assert codes(findings) == ["FSTC702"]
        assert CODES["FSTC702"][0] == "error"

    def test_engine_tracker_lints_clean_end_to_end(self):
        from repro.data.random_tensors import random_coo

        engine = IncrementalEngine()
        engine.register(
            "s",
            random_coo((64, 8), nnz=60, seed=0),
            random_coo((8, 8), nnz=20, seed=1),
            [(1, 0)],
        )
        assert lint_dependency_tracker(engine.tracker) == []


class TestConfigLint:
    def test_sane_config_is_clean(self):
        assert lint_stream_config(
            config(staleness_threshold=0.35, log_maxlen=256)
        ) == []

    def test_absent_knobs_are_clean(self):
        assert lint_stream_config(config(unrelated=1)) == []

    def test_zero_threshold_is_fstc703(self):
        findings = lint_stream_config(config(staleness_threshold=0.0))
        assert codes(findings) == ["FSTC703"]
        assert CODES["FSTC703"][0] == "warning"

    def test_oversized_threshold_is_fstc703(self):
        findings = lint_stream_config(config(staleness_threshold=0.9))
        assert codes(findings) == ["FSTC703"]

    def test_unbounded_log_is_fstc704(self):
        findings = lint_stream_config(config(log_maxlen=0))
        assert codes(findings) == ["FSTC704"]
        assert CODES["FSTC704"][0] == "warning"
        findings = lint_stream_config(config(log_maxlen=10_000_000))
        assert codes(findings) == ["FSTC704"]

    def test_stream_prefixed_knobs_are_read(self):
        # ServiceConfig spells the knobs stream_staleness_threshold /
        # stream_log_maxlen; the lint accepts both spellings.
        findings = lint_stream_config(
            config(stream_staleness_threshold=2.0, stream_log_maxlen=-1)
        )
        assert codes(findings) == ["FSTC703", "FSTC704"]

    def test_engine_defaults_lint_clean(self):
        assert lint_stream_config(IncrementalEngine()) == []


class TestRegistry:
    def test_fstc7xx_codes_are_documented(self):
        # docs/staticcheck.md must describe every registered code with
        # its severity (the FSTC105 self-audit).
        assert audit_code_registry() == []

    def test_fstc7xx_codes_registered(self):
        for code in ("FSTC701", "FSTC702", "FSTC703", "FSTC704"):
            assert code in CODES
