"""Unit tests for the AST source lint (FSTC1xx)."""

import textwrap

from repro.staticcheck import lint_tree
from repro.staticcheck.ast_lint import lint_source


def run(source, **kwargs):
    kwargs.setdefault("public", False)
    return lint_source(textwrap.dedent(source), **kwargs)


def codes(diags):
    return [d.code for d in diags]


class TestPerElementLoops:
    def test_range_over_nnz_flagged(self):
        diags = run(
            """
            def kernel(op):
                for k in range(op.nnz):
                    pass
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC101"]

    def test_range_over_len_flagged(self):
        diags = run(
            """
            def kernel(keys):
                for k in range(len(keys)):
                    pass
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC101"]

    def test_zip_tolist_flagged(self):
        diags = run(
            """
            def kernel(a, b):
                for x, y in zip(a.tolist(), b.tolist()):
                    pass
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC101"]

    def test_fixed_range_allowed(self):
        diags = run(
            """
            def kernel(tiles):
                for k in range(8):
                    pass
            """,
            kernel=True,
        )
        assert diags == []

    def test_pragma_suppresses(self):
        diags = run(
            """
            def kernel(op):
                for k in range(op.nnz):  # staticcheck: ignore[FSTC101]
                    pass
            """,
            kernel=True,
        )
        assert diags == []

    def test_rule_off_outside_kernels(self):
        diags = run(
            """
            def baseline(op):
                for k in range(op.nnz):
                    pass
            """,
            kernel=False,
        )
        assert diags == []


class TestExceptionDiscipline:
    def test_bare_valueerror_flagged(self):
        diags = run(
            """
            def f(x):
                raise ValueError("bad")
            """,
            hot=True,
        )
        assert codes(diags) == ["FSTC102"]

    def test_repro_errors_allowed(self):
        diags = run(
            """
            from repro.errors import ShapeError
            def f(x):
                raise ShapeError("bad")
            """,
            hot=True,
        )
        assert diags == []

    def test_reraise_allowed(self):
        diags = run(
            """
            def f(x):
                try:
                    x()
                except Exception:
                    raise
            """,
            hot=True,
        )
        assert diags == []

    def test_pragma_suppresses(self):
        diags = run(
            """
            def f(key):
                raise KeyError(key)  # staticcheck: ignore[FSTC102] protocol
            """,
            hot=True,
        )
        assert diags == []


class TestDeterminism:
    def test_time_time_flagged(self):
        diags = run(
            """
            import time
            def kernel():
                return time.time()
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC103"]

    def test_perf_counter_allowed(self):
        diags = run(
            """
            import time
            def kernel():
                return time.perf_counter()
            """,
            kernel=True,
        )
        assert diags == []

    def test_legacy_np_random_flagged(self):
        diags = run(
            """
            import numpy as np
            def kernel():
                return np.random.rand(4)
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC103"]

    def test_default_rng_allowed(self):
        diags = run(
            """
            import numpy as np
            def kernel():
                return np.random.default_rng(7)
            """,
            kernel=True,
        )
        assert diags == []


class TestPublicModules:
    def test_missing_all_flagged(self):
        diags = run("x = 1\n", public=True)
        assert codes(diags) == ["FSTC104"]

    def test_all_declared(self):
        diags = run('__all__ = ["x"]\nx = 1\n', public=True)
        assert diags == []


class TestBackendDiscipline:
    def test_direct_kernel_call_flagged(self):
        diags = run(
            """
            import numpy as np
            def kernel(a, b):
                return np.matmul(a, b)
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC401"]

    def test_pragma_suppresses_finding(self):
        diags = run(
            """
            import numpy as np
            def kernel(a, b):
                return np.matmul(a, b)  # staticcheck: ignore[FSTC401] ref
            """,
            kernel=True,
        )
        assert diags == []

    def test_pragma_lists_multiple_codes(self):
        diags = run(
            """
            import numpy as np
            def kernel(a, b):
                return np.matmul(a, b)  # staticcheck: ignore[FSTC101, FSTC401]
            """,
            kernel=True,
        )
        assert diags == []

    def test_pragma_for_other_code_does_not_suppress(self):
        diags = run(
            """
            import numpy as np
            def kernel(a, b):
                return np.matmul(a, b)  # staticcheck: ignore[FSTC101]
            """,
            kernel=True,
        )
        assert codes(diags) == ["FSTC401"]

    def test_backend_layer_exempt(self):
        diags = run(
            """
            import numpy as np
            def kernel(a, b):
                return np.matmul(a, b)
            """,
            kernel=True,
            backend_layer=True,
        )
        assert diags == []


def test_repro_tree_is_clean():
    """The shipped source passes its own lint (the CI --self gate)."""
    assert lint_tree() == []
