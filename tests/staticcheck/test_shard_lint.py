"""Unit tests for the sharded-serving lints (FSTC304/FSTC305)."""

from types import SimpleNamespace

from repro.serve import ServiceConfig, ShardedConfig
from repro.staticcheck import lint_ring_balance, lint_shard_config


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestShardConfigLint:
    def test_oversubscription_flagged(self):
        config = ShardedConfig(
            n_shards=4, service=ServiceConfig(n_workers=2)
        )
        out = lint_shard_config(config, cpu_count=4)
        assert codes(out) == ["FSTC304"]
        assert out[0].severity == "warning"
        assert out[0].data == {"n_shards": 4, "n_workers": 2, "cpus": 4}

    def test_fitting_fleet_is_clean(self):
        config = ShardedConfig(
            n_shards=4, service=ServiceConfig(n_workers=2)
        )
        assert lint_shard_config(config, cpu_count=8) == []

    def test_single_shard_never_flagged(self):
        # One shard is the unsharded regime; FSTC303 owns that story.
        config = ShardedConfig(
            n_shards=1, service=ServiceConfig(n_workers=16)
        )
        assert lint_shard_config(config, cpu_count=1) == []

    def test_duck_typed_config(self):
        fake = SimpleNamespace(
            n_shards=3, service=SimpleNamespace(n_workers=3)
        )
        assert codes(lint_shard_config(fake, cpu_count=4)) == ["FSTC304"]


class TestRingBalanceLint:
    def test_balanced_declared_set_is_clean(self):
        keys = [f"sig{i}" for i in range(64)]
        assert lint_ring_balance(2, keys) == []

    def test_empty_shard_flagged(self):
        # One vnode per shard makes starvation likely for a small set.
        keys = [f"sig{i}" for i in range(6)]
        found = []
        for replicas in (1, 2):
            found.extend(lint_ring_balance(4, keys, replicas=replicas))
        assert "FSTC305" in codes(found)

    def test_single_shard_or_no_keys_is_clean(self):
        assert lint_ring_balance(1, ["sig0", "sig1"]) == []
        assert lint_ring_balance(4, []) == []

    def test_tiny_signature_sets_not_judged_for_skew(self):
        # With fewer than 2 keys/shard a "pathological" share is just
        # pigeonholing; only emptiness may be reported.
        out = lint_ring_balance(3, ["a", "b", "c"])
        assert all(
            "own" not in d.message or "none" in d.message for d in out
        )

    def test_findings_carry_the_share_map(self):
        keys = [f"sig{i}" for i in range(8)]
        for diag in lint_ring_balance(4, keys, replicas=1):
            shares = diag.data["shares"]
            assert set(shares) == {"0", "1", "2", "3"}
            assert sum(shares.values()) == 1.0
