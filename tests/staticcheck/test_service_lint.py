"""Unit tests for the FSTC3xx service-configuration lints."""

from types import SimpleNamespace

import pytest

from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.staticcheck import (
    cost_floor_seconds,
    lint_request_deadline,
    lint_service_config,
)
from repro.staticcheck.diagnostics import CODES


def config(**overrides) -> SimpleNamespace:
    # The lint is duck-typed so staticcheck never imports repro.serve;
    # a plain namespace is the documented stand-in.
    base = dict(queue_capacity=16, n_workers=2, max_batch=8)
    base.update(overrides)
    return SimpleNamespace(**base)


@pytest.fixture
def pairwise_request():
    a = random_coo((40, 30), nnz=200, seed=1)
    b = random_coo((30, 20), nnz=150, seed=2)
    return SimpleNamespace(
        kind="pairwise", name="r", left=a, right=b, pairs=((1, 0),),
        deadline_s=None,
    )


@pytest.fixture
def network_request():
    a = random_coo((20, 16), nnz=80, seed=3)
    b = random_coo((16, 12), nnz=60, seed=4)
    return SimpleNamespace(
        kind="network", name="n", subscripts="ij,jk->ik", operands=(a, b),
        deadline_s=None,
    )


class TestRegistry:
    def test_codes_are_registered(self):
        assert CODES["FSTC301"][0] == "error"
        assert CODES["FSTC302"][0] == "warning"
        assert CODES["FSTC303"][0] == "warning"


class TestConfigLint:
    def test_clean_config_has_no_findings(self):
        assert lint_service_config(config(), DESKTOP) == []

    @pytest.mark.parametrize("capacity", [None, 0, -1])
    def test_unbounded_queue_is_an_error(self, capacity):
        findings = lint_service_config(
            config(queue_capacity=capacity), DESKTOP
        )
        assert [d.code for d in findings] == ["FSTC301"]
        assert findings[0].severity == "error"

    def test_zero_workers_is_an_error(self):
        findings = lint_service_config(config(n_workers=0), DESKTOP)
        assert [d.code for d in findings] == ["FSTC301"]

    def test_zero_batch_is_an_error(self):
        findings = lint_service_config(config(max_batch=0), DESKTOP)
        assert [d.code for d in findings] == ["FSTC301"]

    def test_oversubscribed_pool_warns(self):
        findings = lint_service_config(
            config(n_workers=DESKTOP.n_cores + 1), DESKTOP
        )
        assert [d.code for d in findings] == ["FSTC303"]
        assert findings[0].severity == "warning"

    def test_location_is_threaded_through(self):
        findings = lint_service_config(
            config(queue_capacity=0), DESKTOP, location="svc A"
        )
        assert findings[0].location == "svc A"


class TestCostFloor:
    def test_pairwise_floor_is_positive(self, pairwise_request):
        assert cost_floor_seconds(pairwise_request, DESKTOP) > 0

    def test_network_floor_is_positive(self, network_request):
        assert cost_floor_seconds(network_request, DESKTOP) > 0

    def test_unpriceable_request_floors_at_zero(self):
        broken = SimpleNamespace(kind="pairwise", left=None, right=None,
                                 pairs=())
        assert cost_floor_seconds(broken, DESKTOP) == 0.0


class TestDeadlineLint:
    def test_impossible_deadline_warns(self, pairwise_request):
        pairwise_request.deadline_s = 1e-12
        findings = lint_request_deadline(pairwise_request, DESKTOP)
        assert [d.code for d in findings] == ["FSTC302"]
        assert findings[0].severity == "warning"
        assert "floor" in findings[0].message

    def test_network_deadline_checked_too(self, network_request):
        network_request.deadline_s = 1e-12
        findings = lint_request_deadline(network_request, DESKTOP)
        assert [d.code for d in findings] == ["FSTC302"]

    def test_generous_deadline_is_clean(self, pairwise_request):
        pairwise_request.deadline_s = 3600.0
        assert lint_request_deadline(pairwise_request, DESKTOP) == []

    def test_no_deadline_is_clean(self, pairwise_request):
        assert lint_request_deadline(pairwise_request, DESKTOP) == []


class TestDocsAudit:
    def test_catalogue_documents_the_service_codes(self):
        from repro.staticcheck import audit_code_registry

        assert audit_code_registry() == []
