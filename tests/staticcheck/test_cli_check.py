"""End-to-end tests of ``python -m repro check``."""

import pytest

from repro.__main__ import main


class TestSelfLint:
    def test_self_is_clean(self, capsys):
        assert main(["check", "--self"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out


class TestJsonOutput:
    def test_self_json_document(self, capsys):
        import json

        assert main(["check", "--self", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 0
        assert isinstance(doc["findings"], list)

    def test_audit_json_carries_verdicts(self, capsys):
        import json

        status = main(["check", "NIPS_2", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert doc["errors"] >= 1
        assert any(f["code"] == "FSTC010" for f in doc["findings"])
        assert any(v == "dnf" for v in doc["verdicts"].values())

    def test_expr_json_carries_verdict(self, capsys):
        import json

        status = main(
            ["check", "--expr", "ij,jk->ik",
             "--shapes", "100x200,200x50", "--nnz", "500,400", "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert status == 0
        assert "verdict" in doc


class TestPassSelfTest:
    def test_passes_gate_is_clean(self, capsys):
        assert main(["check", "--passes"]) == 0
        out = capsys.readouterr().out
        assert "pass self-test:" in out
        assert "corruptions caught" in out

    def test_passes_json_summary(self, capsys):
        import json

        assert main(["check", "--passes", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["errors"] == 0
        assert doc["summary"]["errors"] == 0
        assert doc["summary"]["clean_pipelines"] > 0
        assert doc["summary"]["corruptions_caught"] > 0


class TestRegistryAudit:
    def test_nips2_dense_dnf_flagged(self, capsys):
        status = main(["check", "NIPS_2"])
        out = capsys.readouterr().out
        assert status == 1
        assert "FSTC010" in out
        assert "DNF" in out

    def test_auto_column_is_clean(self, capsys):
        assert main(["check", "NIPS_2", "--accumulator", "auto"]) == 0

    def test_single_machine_selector(self, capsys):
        status = main(
            ["check", "NIPS_2", "--machine", "desktop",
             "--accumulator", "dense"]
        )
        out = capsys.readouterr().out
        assert status == 1
        assert "server" not in out

    def test_hazards_mode(self, capsys):
        status = main(
            ["check", "uber_02", "--machine", "desktop",
             "--accumulator", "auto", "--hazards"]
        )
        assert status == 0


class TestExpressionMode:
    def test_valid_expression(self, capsys):
        status = main(
            ["check", "--expr", "ij,jk->ik",
             "--shapes", "100x200,200x50", "--nnz", "500,400"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "predicted plan" in out
        assert "verdict: ok" in out

    def test_extent_conflict_fails(self, capsys):
        status = main(
            ["check", "--expr", "ij,jk->ik", "--shapes", "10x20,19x5"]
        )
        out = capsys.readouterr().out
        assert status == 1
        assert "FSTC003" in out

    def test_expr_requires_shapes(self, capsys):
        assert main(["check", "--expr", "ij,jk->ik"]) == 2

    def test_forced_dense_antipattern(self, capsys):
        status = main(
            ["check", "--expr", "ij,jk->ik",
             "--shapes", "100000x1000,1000x100000",
             "--nnz", "2000,2000", "--accumulator", "dense"]
        )
        out = capsys.readouterr().out
        assert "FSTC013" in out


class TestTable3Reproduction:
    """The audit reproduces Table 3's DNF cell statically: the only
    error-severity findings in the whole registry audit are the NIPS
    mode-2 forced-dense columns."""

    def test_only_nips2_dense_errors(self, capsys):
        status = main(["check"])
        out = capsys.readouterr().out
        assert status == 1
        error_lines = [
            line for line in out.splitlines()
            if " error: " in line and "FSTC" in line
        ]
        assert error_lines, "expected FSTC error findings"
        for line in error_lines:
            assert "NIPS_2 " in line or "NIPS_2[" in line or \
                "case NIPS_2" in line
            assert "dense" in line
