"""Static/dynamic parity: the linter's predicted verdict matches what
the runtime actually does, for every registry case on both machines.

This is the load-bearing guarantee behind ``python -m repro check``: a
predicted ``"dnf"`` means the kernel *would* raise
:class:`WorkspaceLimitError` (the paper's Table 3 DNF regime), and a
predicted ``"ok"`` means it completes.  The golden Algorithm 7 fixture
(``tests/data/algorithm7_plans.json``) pins the same problem parameters
the audit derives, so plan decisions are cross-checked against it too.
"""

import json
from pathlib import Path

import pytest

from repro import contract
from repro.data.registry import all_cases, get_case
from repro.errors import WorkspaceLimitError
from repro.staticcheck import audit_case, case_problem

FIXTURE = Path(__file__).parent.parent / "data" / "algorithm7_plans.json"
GOLDEN = json.loads(FIXTURE.read_text())
CASES = sorted(all_cases())
MACHINES = ("desktop", "server")

_operands_cache = {}


def operands(name):
    if name not in _operands_cache:
        _operands_cache[name] = get_case(name).load()
    return _operands_cache[name]


def runtime_verdict(name, machine_name, accumulator):
    from repro.machine.specs import DESKTOP, SERVER

    machine = SERVER if machine_name == "server" else DESKTOP
    left, right, pairs = operands(name)
    try:
        contract(
            left, right, pairs, machine=machine, accumulator=accumulator
        )
    except WorkspaceLimitError:
        return "dnf"
    return "ok"


def test_fixture_covers_every_case():
    assert sorted(GOLDEN) == CASES
    assert len(CASES) == 16


@pytest.mark.parametrize("name", CASES)
def test_problem_parameters_match_golden_fixture(name):
    problem = case_problem(name)
    golden = GOLDEN[name]["problem"]
    assert {
        k: problem[k] for k in ("L", "R", "C", "nnz_l", "nnz_r")
    } == golden


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("machine", MACHINES)
def test_predicted_plan_matches_golden_fixture(name, machine):
    audit = audit_case(
        name, machines=(machine,), accumulators=("auto",),
        problem=dict(GOLDEN[name]["problem"],
                     occupied_l={"ext": [], "model": None},
                     occupied_r={"ext": []}),
    )
    prediction = audit.reports[(machine, "auto")].prediction
    golden = GOLDEN[name][machine]
    assert prediction.accumulator == golden["accumulator"]
    assert prediction.tile_l == golden["tile_l"]
    assert prediction.tile_r == golden["tile_r"]


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("machine", MACHINES)
def test_auto_verdict_matches_runtime(name, machine):
    audit = audit_case(name, machines=(machine,), accumulators=("auto",))
    static = audit.verdict(machine, "auto")
    assert static == "ok"  # every Table 3 auto row completes
    assert runtime_verdict(name, machine, "auto") == "ok"


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("machine", MACHINES)
def test_forced_dense_verdict_matches_runtime(name, machine):
    """The Table 3 dense column — including the NIPS mode-2 DNF cell."""
    audit = audit_case(name, machines=(machine,), accumulators=("dense",))
    static = audit.verdict(machine, "dense")
    assert runtime_verdict(name, machine, "dense") == static


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("machine", MACHINES)
def test_forced_sparse_never_predicts_dnf(name, machine):
    # Sparse tiles grow with output sparsity, so no benchmark case can
    # overflow either guard; Table 3's sparse column has no DNF entry.
    audit = audit_case(name, machines=(machine,), accumulators=("sparse",))
    assert audit.verdict(machine, "sparse") == "ok"


def test_nips2_dense_dnf_is_the_only_dnf():
    dnf = []
    for name in CASES:
        audit = audit_case(name)
        for (machine, acc), report in audit.reports.items():
            if report.verdict == "dnf":
                dnf.append((name, machine, acc))
    assert dnf == [
        ("NIPS_2", "desktop", "dense"),
        ("NIPS_2", "server", "dense"),
    ]
