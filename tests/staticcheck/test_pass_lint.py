"""Unit tests for the FSTC5xx optimizer-pass soundness lints."""

from dataclasses import replace

import pytest

from repro.machine.specs import DESKTOP
from repro.network.ir import TensorNetwork
from repro.network.optimize import build_plan
from repro.network.passes import PassContext, resolve_pipeline
from repro.staticcheck.pass_lint import (
    effective_cost,
    lint_plan_annotations,
    self_test_passes,
    verify_rewrite,
)


def chain_network():
    return TensorNetwork.parse(
        "ab,bc,cd,de->ae", [(16, 16)] * 4, nnz=[48, 48, 48, 48]
    )


def twin_branch_network():
    # two isomorphic branches (same shapes/nnz) under distinct labels
    return TensorNetwork.parse(
        "ij,jk,lm,mn->il", [(14, 14)] * 4, nnz=[40, 40, 40, 40]
    )


def empty_mid_network():
    return TensorNetwork.parse(
        "ij,jk,kl->il", [(10, 10)] * 3, nnz=[25, 0, 25]
    )


def optimized(network, *, dtypes=None, volatile=(), optimizer="dp"):
    base = build_plan(network, DESKTOP, optimizer)
    pipeline = resolve_pipeline("default")
    context = PassContext(dtypes=dtypes, volatile=volatile)
    return base, pipeline.run(base, network, context=context)


def errors(diags):
    return [d for d in diags if d.severity == "error"]


def codes(diags):
    return {d.code for d in diags}


class TestCleanPlans:
    def test_pipeline_output_verifies(self):
        network = chain_network()
        base, opt = optimized(network)
        diags = verify_rewrite(base, opt, network, dtypes=("float64",) * 4)
        assert errors(diags) == []

    def test_identity_rewrite_verifies(self):
        network = chain_network()
        base = build_plan(network, DESKTOP, "dp")
        assert errors(verify_rewrite(base, base, network)) == []

    def test_self_test_is_clean(self):
        diags, summary = self_test_passes()
        assert summary["errors"] == 0, [d.render() for d in diags]
        assert summary["clean_pipelines"] > 0
        assert summary["corruptions_caught"] > 0


class TestFSTC501Structure:
    def test_tampered_step_subscripts(self):
        network = chain_network()
        base, opt = optimized(network)
        steps = list(opt.steps)
        steps[0] = replace(steps[0], sub_out=steps[0].sub_out[::-1] + "z")
        bad = replace(opt, steps=tuple(steps))
        assert "FSTC501" in codes(verify_rewrite(opt, bad, network))

    def test_tampered_cost_estimate(self):
        network = chain_network()
        base, opt = optimized(network)
        steps = list(opt.steps)
        steps[0] = replace(steps[0], est_cost=steps[0].est_cost * 2)
        bad = replace(opt, steps=tuple(steps))
        assert "FSTC501" in codes(verify_rewrite(opt, bad, network))

    def test_dropped_step(self):
        network = chain_network()
        base, opt = optimized(network)
        bad = replace(opt, steps=opt.steps[:-1])
        assert "FSTC501" in codes(verify_rewrite(opt, bad, network))

    def test_changed_interface(self):
        network = chain_network()
        base, opt = optimized(network)
        bad = replace(opt, est_total_cost=opt.est_total_cost * 3)
        assert "FSTC501" in codes(verify_rewrite(opt, bad, network))

    def test_stripped_pass_record(self):
        network = chain_network()
        base, opt = optimized(network)
        bad = replace(opt, passes=())
        assert "FSTC501" in codes(verify_rewrite(opt, bad, network))


class TestFSTC502CSE:
    def test_forward_reference(self):
        network = chain_network()
        base, opt = optimized(network)
        steps = list(opt.steps)
        steps[0] = replace(steps[0], cse_of=len(steps) - 1)
        bad = replace(opt, steps=tuple(steps))
        assert "FSTC502" in codes(lint_plan_annotations(bad, network))

    def test_structurally_different_target(self):
        network = chain_network()
        base, opt = optimized(network)
        steps = list(opt.steps)
        steps[-1] = replace(steps[-1], cse_of=0)
        bad = replace(opt, steps=tuple(steps))
        assert "FSTC502" in codes(lint_plan_annotations(bad, network))


class TestFSTC503DtypeMerge:
    def test_cse_across_dtypes_flagged(self):
        network = twin_branch_network()
        base = build_plan(network, DESKTOP, "dp")
        # find the isomorphic twin steps the cse pass would merge
        opt = resolve_pipeline("cse").run(
            base, network, context=PassContext()
        )
        merged = [k for k, s in enumerate(opt.steps) if s.cse_of >= 0]
        assert merged, "twin-branch fixture must produce a CSE merge"
        # same plan, but the second branch's operands are float32
        dtypes = ("float64", "float64", "float32", "float32")
        diags = lint_plan_annotations(opt, network, dtypes=dtypes)
        assert "FSTC503" in codes(diags)

    def test_same_dtypes_clean(self):
        network = twin_branch_network()
        base = build_plan(network, DESKTOP, "dp")
        opt = resolve_pipeline("cse").run(
            base, network, context=PassContext()
        )
        diags = lint_plan_annotations(
            opt, network, dtypes=("float64",) * 4
        )
        assert errors(diags) == []


class TestFSTC504Hoist:
    def test_hoist_of_intermediate(self):
        network = chain_network()
        base, opt = optimized(network)
        steps = list(opt.steps)
        steps[-1] = replace(steps[-1], hoist_l=True, hoist_r=True)
        bad = replace(opt, steps=tuple(steps))
        assert "FSTC504" in codes(lint_plan_annotations(bad, network))

    def test_hoist_of_volatile_operand(self):
        network = chain_network()
        base = build_plan(network, DESKTOP, "dp")
        opt = resolve_pipeline("hoist").run(
            base, network, context=PassContext()
        )
        hoisted = [
            k for k, s in enumerate(opt.steps) if s.hoist_l or s.hoist_r
        ]
        assert hoisted, "chain fixture must hoist at least one side"
        diags = lint_plan_annotations(
            opt, network, volatile=tuple(range(network.n_operands))
        )
        assert "FSTC504" in codes(diags)

    def test_hoist_on_outer_step(self):
        network = TensorNetwork.parse(
            "ij,kl->ijkl", [(6, 7), (5, 4)], nnz=[10, 8]
        )
        base = build_plan(network, DESKTOP, "dp")
        steps = list(base.steps)
        steps[0] = replace(steps[0], hoist_l=True)
        bad = replace(base, steps=tuple(steps))
        assert "FSTC504" in codes(lint_plan_annotations(bad, network))


class TestFSTC505Zero:
    def test_false_dead_annotation(self):
        network = chain_network()
        base, opt = optimized(network)
        steps = list(opt.steps)
        steps[-1] = replace(steps[-1], dead=True)
        bad = replace(opt, steps=tuple(steps))
        assert "FSTC505" in codes(lint_plan_annotations(bad, network))

    def test_false_zero_premise(self):
        network = chain_network()
        base, opt = optimized(network)
        bad = replace(opt, zero_operands=(0,))
        assert "FSTC505" in codes(lint_plan_annotations(bad, network))

    def test_out_of_range_premise(self):
        network = chain_network()
        base, opt = optimized(network)
        bad = replace(opt, zero_operands=(99,))
        assert "FSTC505" in codes(lint_plan_annotations(bad, network))

    def test_true_dead_plan_is_clean(self):
        network = empty_mid_network()
        base, opt = optimized(network)
        assert any(s.dead for s in opt.steps)
        assert errors(lint_plan_annotations(opt, network)) == []


class TestFSTC506Pessimization:
    def test_stripping_annotations_warns(self):
        network = twin_branch_network()
        base, opt = optimized(network)
        assert any(s.cse_of >= 0 for s in opt.steps)
        stripped = replace(opt, steps=tuple(
            replace(s, cse_of=-1) for s in opt.steps
        ))
        diags = verify_rewrite(opt, stripped, network)
        assert "FSTC506" in codes(diags)
        assert errors(diags) == []

    def test_effective_cost_drops_with_cse(self):
        network = twin_branch_network()
        base, opt = optimized(network)
        assert effective_cost(opt) < effective_cost(base)


class TestPipelineRefusesUnsoundPass:
    def test_tampering_pass_raises(self):
        from repro.errors import PlanError
        from repro.network.passes import PassPipeline, PlanPass

        class Tamper(PlanPass):
            name = "tamper"

            def run(self, plan, network, context):
                steps = list(plan.steps)
                steps[0] = replace(
                    steps[0], sub_out=steps[0].sub_out[::-1] + "z"
                )
                return replace(plan, steps=tuple(steps))

        network = chain_network()
        base = build_plan(network, DESKTOP, "dp")
        pipeline = PassPipeline([Tamper()])
        with pytest.raises(PlanError, match="unsound rewrite"):
            pipeline.run(base, network)
