"""Unit tests for task-graph hazard analysis (FSTC2xx) and its
pre-execution integration in the task queue and kernel."""

import numpy as np
import pytest

from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import tiled_co_contract
from repro.data.random_tensors import random_coo
from repro.errors import SchedulerError, StaticCheckError
from repro.machine.specs import DESKTOP
from repro.parallel.taskqueue import TaskQueue
from repro.staticcheck import (
    TileTask,
    analyze_task_graph,
    assert_disjoint_writes,
    hazards_for_stats,
    write_sets_for_pairs,
)


def codes(diags):
    return [d.code for d in diags]


class TestAnalyzeTaskGraph:
    def test_disjoint_pairs_are_clean(self):
        tasks = write_sets_for_pairs([(0, 0), (0, 1), (1, 0), (1, 1)])
        assert analyze_task_graph(tasks) == []

    def test_repeated_pair_is_a_conflict(self):
        tasks = write_sets_for_pairs([(0, 0), (0, 1), (0, 0)])
        found = codes(analyze_task_graph(tasks))
        assert "FSTC201" in found
        assert "FSTC202" in found  # reducing writers: order-dependent fp

    def test_exact_reduction_silences_fstc202(self):
        tasks = write_sets_for_pairs([(0, 0), (0, 0)])
        found = codes(analyze_task_graph(tasks, exact_reduction=True))
        assert "FSTC201" in found
        assert "FSTC202" not in found

    def test_non_reducing_overwrite_is_a_conflict(self):
        tasks = [
            TileTask(0, frozenset([(0, 0)]), reduces=False),
            TileTask(1, frozenset([(0, 0)]), reduces=False),
        ]
        found = analyze_task_graph(tasks)
        assert codes(found) == ["FSTC201"]

    def test_fewer_tasks_than_workers(self):
        tasks = write_sets_for_pairs([(0, 0), (0, 1)])
        found = analyze_task_graph(tasks, n_workers=8)
        assert codes(found) == ["FSTC203"]
        assert found[0].severity == "info"

    def test_stats_adapter_requires_task_pairs(self):
        with pytest.raises(StaticCheckError):
            hazards_for_stats(object())


class TestAssertDisjointWrites:
    def test_clean(self):
        assert_disjoint_writes([{(0, 0)}, {(0, 1)}])

    def test_conflict_raises(self):
        with pytest.raises(SchedulerError, match="FSTC201"):
            assert_disjoint_writes([{(0, 0)}, {(0, 1)}, {(0, 0)}])


class TestTaskQueueGate:
    def test_run_with_disjoint_write_sets(self):
        records = TaskQueue(1).run(
            [lambda: 1, lambda: 2], write_sets=[{(0, 0)}, {(0, 1)}]
        )
        assert [r.result for r in records] == [1, 2]

    def test_run_rejects_conflicting_write_sets(self):
        ran = []
        with pytest.raises(SchedulerError):
            TaskQueue(2).run(
                [lambda: ran.append(1), lambda: ran.append(2)],
                write_sets=[{(0, 0)}, {(0, 0)}],
            )
        assert ran == []  # the gate fires before any task executes

    def test_run_rejects_miscounted_write_sets(self):
        with pytest.raises(SchedulerError):
            TaskQueue(1).run([lambda: 1], write_sets=[{(0,)}, {(1,)}])


class TestKernelIntegration:
    def _operands(self):
        a = random_coo((40, 40), nnz=160, seed=21)
        b = random_coo((40, 40), nnz=160, seed=22)
        spec = ContractionSpec(a.shape, b.shape, [(1, 0)])
        lo = spec.linearize_left(a).sum_duplicates()
        ro = spec.linearize_right(b).sum_duplicates()
        return spec, lo, ro

    def test_check_hazards_passes_and_matches_unchecked(self):
        spec, lo, ro = self._operands()
        plan = choose_plan(spec, lo.nnz, ro.nnz, DESKTOP)
        l1, r1, v1, stats = tiled_co_contract(lo, ro, plan, check_hazards=True)
        l2, r2, v2, _ = tiled_co_contract(lo, ro, plan)
        order1 = np.lexsort((r1, l1))
        order2 = np.lexsort((r2, l2))
        np.testing.assert_array_equal(l1[order1], l2[order2])
        np.testing.assert_array_equal(r1[order1], r2[order2])
        np.testing.assert_allclose(v1[order1], v2[order2])
        # The dispatch list the gate checked is the recorded one, and it
        # is hazard-free by construction.
        assert analyze_task_graph(
            write_sets_for_pairs(stats.task_pairs)
        ) == []
