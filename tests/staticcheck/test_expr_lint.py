"""Unit tests for the expression/plan linter (FSTC0xx)."""

import pytest

from repro.errors import StaticCheckError
from repro.machine.specs import DESKTOP, SERVER
from repro.staticcheck import lint_expression, lint_problem, predict_plan


def codes(report):
    return [d.code for d in report.diagnostics]


class TestSubscriptLints:
    def test_malformed_subscripts(self):
        report = lint_expression("ij,jk-ik", [(4, 4), (4, 4)])
        assert report.verdict == "invalid"
        assert "FSTC001" in codes(report)

    def test_arity_mismatch(self):
        report = lint_expression("ijk,jk->i", [(4, 4), (4, 4)])
        assert report.verdict == "invalid"
        assert "FSTC002" in codes(report)

    def test_extent_conflict(self):
        report = lint_expression("ij,jk->ik", [(4, 5), (6, 7)])
        assert report.verdict == "invalid"
        assert "FSTC003" in codes(report)

    def test_nonpositive_extent(self):
        report = lint_expression("ij,jk->ik", [(4, 0), (0, 7)])
        assert report.verdict == "invalid"
        assert "FSTC004" in codes(report)

    def test_nnz_exceeds_cells(self):
        report = lint_expression(
            "ij,jk->ik", [(4, 4), (4, 4)], nnz=[17, 4]
        )
        assert report.verdict == "invalid"
        assert "FSTC005" in codes(report)

    def test_implicit_sum_out_warns(self):
        report = lint_expression("ij,jk->k", [(4, 5), (5, 6)])
        assert "FSTC006" in codes(report)
        assert report.verdict == "ok"  # warning, not error

    def test_unsupported_dtype(self):
        report = lint_expression(
            "ij,jk->ik", [(4, 4), (4, 4)], dtypes=["float16", "float64"]
        )
        assert "FSTC007" in codes(report)

    def test_mixed_dtypes(self):
        report = lint_expression(
            "ij,jk->ik", [(4, 4), (4, 4)], dtypes=["float32", "float64"]
        )
        assert "FSTC007" in codes(report)

    def test_outer_product_warns(self):
        # Outer products are supported (planned as explicit network
        # steps) but worth flagging: FSTC008 warning + FSTC017 info.
        report = lint_expression("ij,kl->ijkl", [(3, 3), (3, 3)])
        assert report.verdict == "ok"
        assert "FSTC008" in codes(report)
        assert "FSTC017" in codes(report)
        sev = {d.code: d.severity for d in report.diagnostics}
        assert sev["FSTC008"] == "warning"


class TestNetworkLints:
    def test_index_in_three_operands(self):
        report = lint_expression(
            "ij,jk,jl->ikl", [(4, 5), (5, 6), (5, 7)]
        )
        assert report.verdict == "invalid"
        assert "FSTC016" in codes(report)
        assert "FSTC001" not in codes(report)

    def test_connected_network_clean(self):
        report = lint_expression(
            "ij,jk,kl->il", [(20, 30), (30, 25), (25, 10)],
            nnz=[100, 90, 40],
        )
        assert report.verdict == "ok"
        assert "FSTC017" not in codes(report)

    def test_disconnected_components_info(self):
        report = lint_expression(
            "ij,jk,lm->ilm", [(4, 5), (5, 6), (7, 8)], nnz=[8, 9, 10]
        )
        assert "FSTC017" in codes(report)
        assert report.verdict == "ok"

    def test_intermediate_blowup_warns(self):
        # Sparse factors around a huge shared index: every path must
        # materialize an intermediate far larger than the inputs.
        report = lint_expression(
            "ai,bi,cj,dj->abcd",
            [(400, 3), (400, 3), (400, 3), (400, 3)],
            nnz=[1200, 1200, 1200, 1200],
        )
        assert "FSTC018" in codes(report)

    def test_clean_expression(self):
        report = lint_expression(
            "ij,jk->ik", [(100, 200), (200, 50)], nnz=[500, 400]
        )
        assert report.verdict == "ok"
        assert report.ok
        assert report.prediction is not None


class TestPlanPrediction:
    # The NIPS mode-2 problem parameters (Table 3's DNF row, at the
    # repository's scaled size — frozen in the Algorithm 7 golden
    # fixture): a forced dense accumulator makes the tile grid overflow
    # the task guard.
    NIPS2 = dict(L=2712996, R=2712996, C=2105, nnz_l=10450, nnz_r=10450)

    def test_nips2_dense_dnf(self):
        p = predict_plan(machine=DESKTOP, accumulator="dense", **self.NIPS2)
        assert p.verdict == "dnf"

    def test_nips2_auto_ok(self):
        p = predict_plan(machine=DESKTOP, accumulator="auto", **self.NIPS2)
        assert p.accumulator == "sparse"
        assert p.verdict == "ok"

    def test_lint_problem_reports_fstc010(self):
        report = lint_problem(
            machine=DESKTOP, accumulator="dense", **self.NIPS2
        )
        assert report.verdict == "dnf"
        assert "FSTC010" in codes(report)
        # The anti-pattern finding rides along: the model would never
        # have chosen dense here.
        assert "FSTC013" in codes(report)

    def test_cell_guard_dnf(self):
        p = predict_plan(
            10_000, 10_000, 100, 5_000_000, 5_000_000, DESKTOP,
            accumulator="dense", tile_size=8192, dense_cell_guard=1 << 20,
        )
        assert p.dense_cells == 8192 * 8192
        assert p.verdict == "dnf"

    def test_sparse_on_dense_antipattern(self):
        report = lint_problem(
            512, 512, 512, 200_000, 200_000, DESKTOP, accumulator="sparse"
        )
        assert "FSTC014" in codes(report)

    def test_zero_density_info(self):
        report = lint_problem(100, 100, 100, 0, 50, DESKTOP)
        assert "FSTC015" in codes(report)
        assert report.verdict == "ok"

    def test_degenerate_tile_warns(self):
        report = lint_problem(
            4096, 4096, 64, 40_000, 40_000, DESKTOP,
            accumulator="dense", tile_size=1,
        )
        assert "FSTC012" in codes(report)

    def test_invalid_inputs_skip_prediction(self):
        report = lint_problem(0, 10, 10, 5, 5, DESKTOP)
        assert report.verdict == "invalid"
        assert report.prediction is None

    def test_negative_nnz(self):
        report = lint_problem(10, 10, 10, -1, 5, DESKTOP)
        assert report.verdict == "invalid"
        assert "FSTC005" in codes(report)

    def test_bad_accumulator_is_api_misuse(self):
        with pytest.raises(StaticCheckError):
            lint_problem(10, 10, 10, 5, 5, DESKTOP, accumulator="fast")

    def test_machines_differ_only_in_scale(self):
        for machine in (DESKTOP, SERVER):
            p = predict_plan(1000, 1000, 1000, 10_000, 10_000, machine)
            assert p.verdict == "ok"
            assert p.tile_l >= 1 and p.tile_r >= 1
