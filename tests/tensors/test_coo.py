"""Unit tests for the COO tensor format."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensors.coo import COOTensor


class TestConstruction:
    def test_basic(self):
        t = COOTensor([[0, 1, 2], [3, 2, 1]], [1.0, 2.0, 3.0], (3, 4))
        assert t.ndim == 2
        assert t.nnz == 3
        assert t.shape == (3, 4)

    def test_1d_coords_promoted(self):
        t = COOTensor([0, 2, 4], [1.0, 1.0, 1.0], (5,))
        assert t.ndim == 1
        assert t.nnz == 3

    def test_empty(self):
        t = COOTensor.empty((4, 5, 6))
        assert t.nnz == 0
        assert t.shape == (4, 5, 6)
        assert t.to_dense().sum() == 0.0

    def test_from_tuples(self):
        t = COOTensor.from_tuples([(0, 1, 5.0), (2, 3, -1.0)], (3, 4))
        dense = t.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[2, 3] == -1.0

    def test_from_tuples_empty(self):
        t = COOTensor.from_tuples([], (3, 4))
        assert t.nnz == 0

    def test_from_tuples_wrong_arity(self):
        with pytest.raises(ShapeError):
            COOTensor.from_tuples([(0, 1, 2, 5.0)], (3, 4))

    def test_from_dense_roundtrip(self, rng):
        dense = rng.random((4, 5))
        dense[dense < 0.5] = 0.0
        t = COOTensor.from_dense(dense)
        np.testing.assert_array_equal(t.to_dense(), dense)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor([[0, 5]], [1.0, 1.0], (3,))

    def test_negative_coord_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor([[-1]], [1.0], (3,))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor([[0, 1]], [1.0], (3,))

    def test_wrong_mode_count_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor([[0], [0]], [1.0], (3,))

    def test_non_integral_coords_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor(np.array([[0.5]]), [1.0], (3,))

    def test_integral_float_coords_accepted(self):
        t = COOTensor(np.array([[1.0, 2.0]]), [1.0, 2.0], (3,))
        assert t.coords.dtype == np.int64


class TestProperties:
    def test_density(self):
        t = COOTensor([[0, 1], [0, 1]], [1.0, 1.0], (2, 2))
        assert t.density == 0.5

    def test_size(self):
        t = COOTensor.empty((3, 4, 5))
        assert t.size == 60

    def test_iteration(self):
        t = COOTensor([[0, 1], [2, 3]], [1.5, 2.5], (2, 4))
        items = list(t)
        assert items == [((0, 2), 1.5), ((1, 3), 2.5)]

    def test_norm(self):
        t = COOTensor([[0, 1]], [3.0, 4.0], (2,))
        assert t.norm() == pytest.approx(5.0)

    def test_norm_with_duplicates(self):
        # duplicates sum to (3+4)=7 at one coordinate
        t = COOTensor([[0, 0]], [3.0, 4.0], (2,))
        assert t.norm() == pytest.approx(7.0)


class TestSumDuplicates:
    def test_combines(self):
        t = COOTensor([[0, 0, 1], [1, 1, 0]], [1.0, 2.0, 5.0], (2, 2))
        s = t.sum_duplicates()
        assert s.nnz == 2
        assert s.to_dense()[0, 1] == 3.0

    def test_sorted_output(self):
        t = COOTensor([[2, 0, 1]], [1.0, 2.0, 3.0], (3,))
        s = t.sum_duplicates()
        np.testing.assert_array_equal(s.coords[0], [0, 1, 2])

    def test_drop_zeros(self):
        t = COOTensor([[0, 0, 1]], [1.0, -1.0, 2.0], (2,))
        s = t.sum_duplicates(drop_zeros=True)
        assert s.nnz == 1
        kept = t.sum_duplicates(drop_zeros=False)
        assert kept.nnz == 2  # explicit zero retained

    def test_empty(self):
        s = COOTensor.empty((3, 3)).sum_duplicates()
        assert s.nnz == 0

    def test_idempotent(self, small_tensor):
        once = small_tensor.sum_duplicates()
        twice = once.sum_duplicates()
        np.testing.assert_array_equal(once.coords, twice.coords)
        np.testing.assert_array_equal(once.values, twice.values)


class TestTransforms:
    def test_sorted_by_default(self, small_tensor):
        s = small_tensor.sorted_by()
        lin = s.linearized()
        assert np.all(np.diff(lin) >= 0)

    def test_sorted_by_custom_order(self):
        t = COOTensor([[1, 0], [0, 1]], [1.0, 2.0], (2, 2))
        s = t.sorted_by([1, 0])
        # sorted by mode 1 first: (1,0) has mode1=0, (0,1) has mode1=1
        np.testing.assert_array_equal(s.coords[1], [0, 1])

    def test_sorted_by_bad_order(self, small_tensor):
        with pytest.raises(ShapeError):
            small_tensor.sorted_by([0, 0, 1])

    def test_permute_modes(self, small_tensor):
        p = small_tensor.permute_modes([2, 0, 1])
        assert p.shape == (11, 9, 7)
        np.testing.assert_array_equal(
            p.to_dense(), np.transpose(small_tensor.to_dense(), (2, 0, 1))
        )

    def test_permute_identity(self, small_tensor):
        p = small_tensor.permute_modes([0, 1, 2])
        np.testing.assert_array_equal(p.to_dense(), small_tensor.to_dense())

    def test_permute_bad(self, small_tensor):
        with pytest.raises(ShapeError):
            small_tensor.permute_modes([0, 1])

    def test_scaled(self, small_tensor):
        s = small_tensor.scaled(2.0)
        np.testing.assert_allclose(s.to_dense(), 2.0 * small_tensor.to_dense())

    def test_copy_independent(self, small_tensor):
        c = small_tensor.copy()
        c.values[:] = 0.0
        assert small_tensor.values.any()


class TestComparison:
    def test_allclose_ignores_order(self):
        a = COOTensor([[0, 1]], [1.0, 2.0], (2,))
        b = COOTensor([[1, 0]], [2.0, 1.0], (2,))
        assert a.allclose(b)

    def test_allclose_ignores_duplicates(self):
        a = COOTensor([[0, 0]], [1.0, 2.0], (2,))
        b = COOTensor([[0]], [3.0], (2,))
        assert a.allclose(b)

    def test_allclose_detects_difference(self):
        a = COOTensor([[0]], [1.0], (2,))
        b = COOTensor([[0]], [1.1], (2,))
        assert not a.allclose(b)

    def test_allclose_shape_mismatch(self):
        a = COOTensor([[0]], [1.0], (2,))
        b = COOTensor([[0]], [1.0], (3,))
        assert not a.allclose(b)

    def test_allclose_explicit_zero_vs_missing(self):
        a = COOTensor([[0, 1]], [1.0, 0.0], (2,))
        b = COOTensor([[0]], [1.0], (2,))
        assert a.allclose(b)


class TestDense:
    def test_to_dense_guard(self):
        t = COOTensor.empty((10_000, 10_000, 10_000))
        with pytest.raises(MemoryError):
            t.to_dense()

    def test_to_dense_sums_duplicates(self):
        t = COOTensor([[0, 0]], [1.0, 2.0], (2,))
        assert t.to_dense()[0] == 3.0

    def test_zero_dim_tensor(self):
        t = COOTensor(np.empty((0, 2), dtype=np.int64), [1.0, 4.0], ())
        assert t.ndim == 0
        assert float(t.to_dense()) == 5.0
        s = t.sum_duplicates()
        assert s.nnz == 1
        assert s.values[0] == 5.0


class TestMergeModes:
    def test_matrix_reshape(self):
        t = COOTensor([[1, 2], [0, 3], [2, 1]], [1.0, 2.0], (3, 4, 5))
        m = t.merge_modes([[0, 1], [2]])
        assert m.shape == (12, 5)
        np.testing.assert_array_equal(
            m.to_dense(), t.to_dense().reshape(12, 5)
        )

    def test_full_flatten(self):
        t = COOTensor([[1], [2]], [7.0], (3, 4))
        flat = t.merge_modes([[0, 1]])
        assert flat.shape == (12,)
        assert flat.to_dense()[1 * 4 + 2] == 7.0

    def test_permuting_merge(self):
        # Groups may reorder modes: ((2,), (0, 1)) = transpose + reshape.
        t = COOTensor([[1], [2], [3]], [1.5], (3, 4, 5))
        m = t.merge_modes([[2], [0, 1]])
        assert m.shape == (5, 12)
        assert m.to_dense()[3, 1 * 4 + 2] == 1.5

    def test_identity_groups(self):
        t = COOTensor([[0, 1], [1, 0]], [1.0, 2.0], (2, 2))
        m = t.merge_modes([[0], [1]])
        np.testing.assert_array_equal(m.to_dense(), t.to_dense())

    def test_bad_partition(self):
        t = COOTensor.empty((2, 3))
        import pytest as _pytest

        with _pytest.raises(ShapeError):
            t.merge_modes([[0]])
        with _pytest.raises(ShapeError):
            t.merge_modes([[0, 0], [1]])
