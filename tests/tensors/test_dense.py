"""Unit tests for the dense einsum reference."""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import ShapeError
from repro.tensors.dense import dense_contract, dense_self_contract


class TestDenseContract:
    def test_matrix_multiply(self):
        a = random_coo((4, 5), nnz=10, seed=1)
        b = random_coo((5, 3), nnz=8, seed=2)
        out = dense_contract(a, b, [(1, 0)])
        np.testing.assert_allclose(out, a.to_dense() @ b.to_dense())

    def test_two_contracted_modes(self):
        a = random_coo((3, 4, 5), nnz=20, seed=3)
        b = random_coo((4, 5, 6), nnz=20, seed=4)
        out = dense_contract(a, b, [(1, 0), (2, 1)])
        expected = np.einsum("abc,bcd->ad", a.to_dense(), b.to_dense())
        np.testing.assert_allclose(out, expected)

    def test_output_mode_order(self):
        a = random_coo((3, 4), nnz=6, seed=5)
        b = random_coo((4, 5, 2), nnz=10, seed=6)
        out = dense_contract(a, b, [(1, 0)])
        assert out.shape == (3, 5, 2)

    def test_full_contraction_scalar(self):
        a = random_coo((3, 4), nnz=6, seed=7)
        out = dense_contract(a, a, [(0, 0), (1, 1)])
        assert out.shape == ()
        assert float(out) == pytest.approx(float((a.to_dense() ** 2).sum()))

    def test_extent_mismatch(self):
        a = random_coo((3, 4), nnz=2, seed=8)
        b = random_coo((5, 2), nnz=2, seed=9)
        with pytest.raises(ShapeError):
            dense_contract(a, b, [(1, 0)])

    def test_repeated_mode_rejected(self):
        a = random_coo((3, 3), nnz=2, seed=10)
        with pytest.raises(ShapeError):
            dense_contract(a, a, [(0, 0), (0, 1)])


class TestSelfContract:
    def test_matches_manual(self):
        t = random_coo((4, 3, 5), nnz=15, seed=11)
        out = dense_self_contract(t, [1])
        expected = np.einsum("abc,dbe->acde", t.to_dense(), t.to_dense())
        np.testing.assert_allclose(out, expected)

    def test_symmetric_output(self):
        t = random_coo((4, 6), nnz=10, seed=12)
        out = dense_self_contract(t, [1])
        np.testing.assert_allclose(out, out.T)
