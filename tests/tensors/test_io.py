"""Unit tests for FROSTT .tns I/O."""

import io

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import FormatError
from repro.tensors.io import read_tns, write_tns


class TestReadTns:
    def test_basic(self):
        text = "1 1 2.5\n2 3 -1.0\n"
        t = read_tns(io.StringIO(text))
        assert t.shape == (2, 3)
        assert t.to_dense()[0, 0] == 2.5
        assert t.to_dense()[1, 2] == -1.0

    def test_comments_and_blanks(self):
        text = "# header\n\n1 1 1.0\n  \n# more\n2 2 2.0\n"
        t = read_tns(io.StringIO(text))
        assert t.nnz == 2

    def test_explicit_shape(self):
        t = read_tns(io.StringIO("1 1 1.0\n"), shape=(5, 5))
        assert t.shape == (5, 5)

    def test_zero_based_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("0 1 1.0\n"))

    def test_inconsistent_arity(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("1 1 1.0\n1 1 1 1.0\n"))

    def test_unparseable(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("1 x 1.0\n"))

    def test_empty_file(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO(""))


class TestRoundTrip:
    def test_memory_roundtrip(self):
        t = random_coo((7, 5, 9), nnz=30, seed=1)
        buf = io.StringIO()
        write_tns(t, buf)
        back = read_tns(io.StringIO(buf.getvalue()), shape=t.shape)
        assert back.allclose(t)

    def test_file_roundtrip(self, tmp_path):
        t = random_coo((4, 6), nnz=10, seed=2)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        back = read_tns(path, shape=t.shape)
        assert back.allclose(t)

    def test_values_exact(self, tmp_path):
        # repr-based writing must round-trip doubles exactly
        t = random_coo((10,), nnz=5, seed=3)
        path = tmp_path / "v.tns"
        write_tns(t, path)
        back = read_tns(path, shape=t.shape)
        a = t.sum_duplicates()
        b = back.sum_duplicates()
        np.testing.assert_array_equal(a.values, b.values)
