"""Unit tests for the CSF format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.random_tensors import random_coo
from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor


class TestConstruction:
    def test_roundtrip_2d(self):
        t = random_coo((8, 9), nnz=20, seed=1)
        csf = CSFTensor.from_coo(t)
        assert csf.to_coo().allclose(t)

    def test_roundtrip_3d(self):
        t = random_coo((5, 6, 7), nnz=40, seed=2)
        csf = CSFTensor.from_coo(t)
        assert csf.to_coo().allclose(t)

    def test_roundtrip_4d(self):
        t = random_coo((4, 3, 5, 6), nnz=50, seed=3)
        csf = CSFTensor.from_coo(t)
        assert csf.to_coo().allclose(t)

    def test_roundtrip_permuted_order(self):
        t = random_coo((5, 6, 7), nnz=30, seed=4)
        csf = CSFTensor.from_coo(t, mode_order=(2, 0, 1))
        assert csf.mode_order == (2, 0, 1)
        assert csf.to_coo().allclose(t)

    def test_empty(self):
        t = COOTensor.empty((3, 4))
        csf = CSFTensor.from_coo(t)
        assert csf.nnz == 0
        assert csf.to_coo().nnz == 0

    def test_duplicates_summed(self):
        t = COOTensor([[0, 0], [1, 1]], [1.0, 2.0], (2, 2))
        csf = CSFTensor.from_coo(t)
        assert csf.nnz == 1
        assert csf.values[0] == 3.0

    def test_bad_mode_order(self):
        t = COOTensor.empty((3, 4))
        with pytest.raises(ShapeError):
            CSFTensor.from_coo(t, mode_order=(0, 0))


class TestStructure:
    def test_node_compression(self):
        # Two nonzeros sharing the mode-0 index -> one root node.
        t = COOTensor([[1, 1], [0, 2]], [1.0, 2.0], (3, 3))
        csf = CSFTensor.from_coo(t)
        assert csf.nodes_at(0) == 1
        assert csf.nodes_at(1) == 2

    def test_node_counts_monotonic(self):
        t = random_coo((6, 6, 6), nnz=60, seed=5)
        csf = CSFTensor.from_coo(t)
        counts = [csf.nodes_at(d) for d in range(3)]
        assert counts == sorted(counts)
        assert counts[-1] == csf.nnz

    def test_children_spans_partition_leaves(self):
        t = random_coo((5, 8), nnz=25, seed=6)
        csf = CSFTensor.from_coo(t)
        total = 0
        for root in range(csf.nodes_at(0)):
            span = csf.children(0, root)
            assert span.stop > span.start
            total += span.stop - span.start
        assert total == csf.nnz

    def test_fids_sorted_within_fibers(self):
        t = random_coo((5, 30), nnz=60, seed=7)
        csf = CSFTensor.from_coo(t)
        for root in range(csf.nodes_at(0)):
            ids, _ = csf.root_slice(root)
            assert np.all(np.diff(ids) > 0)

    def test_root_slice_values(self):
        t = COOTensor([[2, 2, 0], [1, 5, 3]], [1.0, 2.0, 3.0], (3, 6))
        csf = CSFTensor.from_coo(t)
        # Roots sorted: 0 then 2.
        ids0, vals0 = csf.root_slice(0)
        np.testing.assert_array_equal(ids0, [3])
        np.testing.assert_array_equal(vals0, [3.0])
        ids1, vals1 = csf.root_slice(1)
        np.testing.assert_array_equal(ids1, [1, 5])
        np.testing.assert_array_equal(vals1, [1.0, 2.0])

    def test_root_slice_rejects_high_order(self):
        t = random_coo((3, 3, 3), nnz=5, seed=8)
        csf = CSFTensor.from_coo(t)
        with pytest.raises(ShapeError):
            csf.root_slice(0)


@settings(max_examples=40, deadline=None)
@given(
    ndim=st.integers(1, 4),
    data=st.data(),
)
def test_roundtrip_property(ndim, data):
    """Property: CSF(COO).to_coo() == COO.sum_duplicates(), for any
    tensor and any mode order."""
    shape = tuple(data.draw(st.integers(1, 6)) for _ in range(ndim))
    nnz = data.draw(st.integers(0, 25))
    coords = np.array(
        [[data.draw(st.integers(0, e - 1)) for _ in range(nnz)] for e in shape],
        dtype=np.int64,
    ).reshape(ndim, nnz)
    values = np.array(
        [data.draw(st.floats(-5, 5, allow_nan=False)) for _ in range(nnz)]
    )
    t = COOTensor(coords, values, shape)
    perm = data.draw(st.permutations(range(ndim)))
    csf = CSFTensor.from_coo(t, mode_order=tuple(perm))
    back = csf.to_coo()
    assert back.allclose(t, atol=1e-9)
    # Structural invariants, via the validator.
    from repro.tensors.validate import validate_csf

    report = validate_csf(csf)
    assert report.ok, report.problems
