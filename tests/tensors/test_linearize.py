"""Unit tests for mode linearization."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensors.linearize import ModeLinearizer, delinearize, linearize


class TestModeLinearizer:
    def test_row_major_strides(self):
        lin = ModeLinearizer((3, 4, 5))
        assert lin.strides == (20, 5, 1)
        assert lin.size == 60

    def test_encode_single(self):
        lin = ModeLinearizer((3, 4))
        flat = lin.encode(np.array([[1], [2]]))
        assert flat[0] == 1 * 4 + 2

    def test_roundtrip(self, rng):
        extents = (5, 7, 3, 2)
        lin = ModeLinearizer(extents)
        coords = np.vstack([rng.integers(0, e, size=50) for e in extents])
        flat = lin.encode(coords)
        np.testing.assert_array_equal(lin.decode(flat), coords)

    def test_roundtrip_exhaustive_small(self):
        lin = ModeLinearizer((2, 3, 2))
        flat = np.arange(12)
        coords = lin.decode(flat)
        np.testing.assert_array_equal(lin.encode(coords), flat)

    def test_bijectivity(self):
        lin = ModeLinearizer((4, 6))
        coords = np.stack(np.meshgrid(np.arange(4), np.arange(6), indexing="ij"))
        flat = lin.encode(coords.reshape(2, -1))
        assert len(np.unique(flat)) == 24
        assert flat.min() == 0 and flat.max() == 23

    def test_empty_extents(self):
        lin = ModeLinearizer(())
        assert lin.size == 1
        flat = lin.encode(np.empty((0, 5), dtype=np.int64))
        np.testing.assert_array_equal(flat, np.zeros(5, dtype=np.int64))
        coords = lin.decode(np.zeros(3, dtype=np.int64))
        assert coords.shape == (0, 3)

    def test_single_mode(self):
        lin = ModeLinearizer((10,))
        flat = lin.encode(np.array([[3, 7]]))
        np.testing.assert_array_equal(flat, [3, 7])

    def test_zero_extent_rejected(self):
        with pytest.raises(ShapeError):
            ModeLinearizer((3, 0))

    def test_wrong_row_count(self):
        lin = ModeLinearizer((3, 4))
        with pytest.raises(ShapeError):
            lin.encode(np.zeros((3, 2), dtype=np.int64))

    def test_decode_requires_1d(self):
        lin = ModeLinearizer((3, 4))
        with pytest.raises(ShapeError):
            lin.decode(np.zeros((2, 2), dtype=np.int64))

    def test_matches_numpy_ravel(self, rng):
        extents = (6, 5, 4)
        lin = ModeLinearizer(extents)
        coords = np.vstack([rng.integers(0, e, size=30) for e in extents])
        expected = np.ravel_multi_index(tuple(coords), extents)
        np.testing.assert_array_equal(lin.encode(coords), expected)


class TestFunctionalForms:
    def test_linearize(self):
        flat = linearize(np.array([[1], [1]]), (2, 2))
        assert flat[0] == 3

    def test_delinearize(self):
        coords = delinearize(np.array([3]), (2, 2))
        np.testing.assert_array_equal(coords, [[1], [1]])
