"""Unit and property tests for the HiCOO format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.random_tensors import clustered_coo, random_coo
from repro.errors import ShapeError
from repro.tensors.coo import COOTensor
from repro.tensors.hicoo import HiCOOTensor


class TestRoundTrip:
    @pytest.mark.parametrize("shape", [(80,), (30, 50), (20, 16, 24)])
    def test_roundtrip(self, shape):
        t = random_coo(shape, nnz=60, seed=1)
        h = HiCOOTensor.from_coo(t, block_bits=3)
        assert h.to_coo().allclose(t)

    def test_empty(self):
        h = HiCOOTensor.from_coo(COOTensor.empty((8, 8)))
        assert h.nnz == 0
        assert h.n_blocks == 0
        assert h.to_coo().nnz == 0

    def test_duplicates_summed(self):
        t = COOTensor([[3, 3], [5, 5]], [1.0, 2.0], (8, 8))
        h = HiCOOTensor.from_coo(t, block_bits=2)
        assert h.nnz == 1
        assert h.to_coo().to_dense()[3, 5] == 3.0

    def test_block_bits_validation(self):
        t = random_coo((8, 8), nnz=4, seed=2)
        with pytest.raises(ShapeError):
            HiCOOTensor.from_coo(t, block_bits=0)


class TestStructure:
    def test_block_partitioning(self):
        t = random_coo((64, 64), nnz=200, seed=3)
        h = HiCOOTensor.from_coo(t, block_bits=4)
        assert np.diff(h.bptr).sum() == h.nnz
        # Every element's offsets fit in the block.
        assert h.ecoords.max() < h.block_size

    def test_block_coords_unique(self):
        t = random_coo((64, 64), nnz=200, seed=4)
        h = HiCOOTensor.from_coo(t, block_bits=4)
        lin = h.bcoords[0] * (64 >> 4) + h.bcoords[1]
        assert len(np.unique(lin)) == h.n_blocks

    def test_block_accessor_consistent(self):
        t = random_coo((32, 32), nnz=50, seed=5)
        h = HiCOOTensor.from_coo(t, block_bits=3)
        total = 0
        for bc, ec, vals in h.blocks():
            assert ec.shape[1] == vals.shape[0]
            total += vals.shape[0]
        assert total == h.nnz

    def test_offset_dtype_narrow(self):
        t = random_coo((64, 64), nnz=20, seed=6)
        h = HiCOOTensor.from_coo(t, block_bits=4)
        assert h.ecoords.dtype == np.uint8
        h16 = HiCOOTensor.from_coo(t, block_bits=12)
        assert h16.ecoords.dtype == np.uint16


class TestCompression:
    def test_clustered_tensor_compresses(self):
        # Spatial locality: many nonzeros per block -> block coords
        # amortize, 1-byte element offsets dominate.
        t = clustered_coo((4000, 4000), nnz=5000, seed=7, n_clusters=4,
                          spread=0.01)
        h = HiCOOTensor.from_coo(t, block_bits=7)
        assert h.compression_ratio() > 3.0

    def test_scattered_tensor_compresses_less(self):
        scattered = random_coo((1 << 20, 1 << 20), nnz=3000, seed=8)
        h = HiCOOTensor.from_coo(scattered, block_bits=7)
        clustered = clustered_coo((1 << 20, 1 << 20), nnz=3000, seed=9,
                                  n_clusters=2, spread=0.0001)
        hc = HiCOOTensor.from_coo(clustered, block_bits=7)
        assert hc.compression_ratio() > h.compression_ratio()

    def test_nbytes_accounting(self):
        t = random_coo((64, 64), nnz=100, seed=10)
        h = HiCOOTensor.from_coo(t, block_bits=4)
        assert h.nbytes == h.index_nbytes + h.values.nbytes


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    ndim=st.integers(1, 3),
    block_bits=st.integers(1, 6),
)
def test_roundtrip_property(data, ndim, block_bits):
    shape = tuple(data.draw(st.integers(1, 40)) for _ in range(ndim))
    cells = int(np.prod(shape))
    nnz = data.draw(st.integers(0, min(30, cells)))
    coords = np.array(
        [[data.draw(st.integers(0, e - 1)) for _ in range(nnz)] for e in shape],
        dtype=np.int64,
    ).reshape(ndim, nnz)
    values = np.array(
        [data.draw(st.floats(-5, 5, allow_nan=False)) for _ in range(nnz)]
    )
    t = COOTensor(coords, values, shape)
    h = HiCOOTensor.from_coo(t, block_bits=block_bits)
    assert h.to_coo().allclose(t, atol=1e-9)
    assert np.diff(h.bptr).min(initial=1) >= 1  # no empty blocks stored
