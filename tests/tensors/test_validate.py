"""Unit tests for the structural validators."""

import numpy as np
import pytest

from repro.data.random_tensors import random_coo
from repro.errors import FormatError
from repro.tensors.coo import COOTensor
from repro.tensors.csf import CSFTensor
from repro.tensors.validate import validate_coo, validate_csf


class TestValidateCoo:
    def test_valid_tensor(self):
        t = random_coo((10, 12), nnz=30, seed=1)
        report = validate_coo(t)
        assert report.ok
        assert report.stats["nnz"] == 30

    def test_out_of_bounds_detected(self):
        t = random_coo((10, 12), nnz=5, seed=2)
        t.coords[0, 0] = 99  # corrupt in place
        report = validate_coo(t)
        assert not report.ok
        assert any("mode 0" in p for p in report.problems)

    def test_negative_detected(self):
        t = random_coo((10, 12), nnz=5, seed=3)
        t.coords[1, 2] = -1
        report = validate_coo(t)
        assert not report.ok

    def test_nan_values_detected(self):
        t = random_coo((10, 12), nnz=5, seed=4)
        t.values[3] = np.nan
        report = validate_coo(t)
        assert not report.ok
        assert any("non-finite" in p for p in report.problems)

    def test_duplicates_counted_and_optionally_rejected(self):
        t = COOTensor([[0, 0, 1]], [1.0, 2.0, 3.0], (2,))
        report = validate_coo(t)
        assert report.ok
        assert report.stats["duplicate_entries"] == 1
        strict = validate_coo(t, require_unique=True)
        assert not strict.ok

    def test_sortedness_check(self):
        t = COOTensor([[1, 0]], [1.0, 2.0], (2,))
        assert validate_coo(t).ok
        assert not validate_coo(t, require_sorted=True).ok
        assert validate_coo(t.sorted_by(), require_sorted=True).ok

    def test_explicit_zero_check(self):
        t = COOTensor([[0]], [0.0], (2,))
        assert validate_coo(t).ok
        assert not validate_coo(t, allow_zero_values=False).ok

    def test_raise_if_invalid(self):
        t = random_coo((10, 12), nnz=5, seed=5)
        t.values[0] = np.inf
        with pytest.raises(FormatError):
            validate_coo(t).raise_if_invalid()

    def test_empty_tensor(self):
        assert validate_coo(COOTensor.empty((3, 4))).ok


class TestValidateCsf:
    def test_valid(self):
        t = random_coo((8, 9, 7), nnz=40, seed=6)
        csf = CSFTensor.from_coo(t)
        report = validate_csf(csf)
        assert report.ok
        assert report.stats["nodes_per_level"][-1] == csf.nnz

    def test_corrupted_pointer_detected(self):
        t = random_coo((8, 9), nnz=20, seed=7)
        csf = CSFTensor.from_coo(t)
        csf.fptr[0][1] = csf.fptr[0][2] + 1  # break monotonicity
        report = validate_csf(csf)
        assert not report.ok

    def test_unsorted_fiber_detected(self):
        t = COOTensor([[0, 0], [1, 4]], [1.0, 2.0], (2, 6))
        csf = CSFTensor.from_coo(t)
        csf.fids[1][:] = csf.fids[1][::-1]  # reverse the fiber
        report = validate_csf(csf)
        assert not report.ok
        assert any("sorted" in p for p in report.problems)

    def test_value_misalignment_detected(self):
        t = random_coo((5, 6), nnz=10, seed=8)
        csf = CSFTensor.from_coo(t)
        csf.values = csf.values[:-1]
        report = validate_csf(csf)
        assert not report.ok

    def test_bad_mode_order_detected(self):
        t = random_coo((5, 6), nnz=10, seed=9)
        csf = CSFTensor.from_coo(t)
        csf.mode_order = (0, 0)
        report = validate_csf(csf)
        assert not report.ok

    def test_empty_csf(self):
        csf = CSFTensor.from_coo(COOTensor.empty((3, 4)))
        assert validate_csf(csf).ok
