"""Property-based tests for COO canonicalization (Hypothesis).

``sum_duplicates`` is the keystone the streaming subsystem leans on:
delta application, output patching, and the bit-identity guarantee all
assume it produces a *canonical* form — sorted row-major, unique
coordinates, values summed in stable input order.  These properties pin
that contract over arbitrary shapes, coordinate multisets, and values,
instead of the handful of examples in ``test_coo.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import DeltaBatch
from repro.tensors.coo import COOTensor


@st.composite
def coo_tensors(draw, max_ndim=3, max_extent=6, max_nnz=40):
    """Arbitrary (possibly duplicate-ridden, unsorted) COO tensors."""
    ndim = draw(st.integers(1, max_ndim))
    shape = tuple(
        draw(st.integers(1, max_extent)) for _ in range(ndim)
    )
    nnz = draw(st.integers(0, max_nnz))
    coords = np.empty((ndim, nnz), dtype=np.int64)
    for k in range(ndim):
        col = draw(
            st.lists(st.integers(0, shape[k] - 1),
                     min_size=nnz, max_size=nnz)
        )
        coords[k] = col
    values = np.array(
        draw(st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nnz, max_size=nnz,
        ))
    )
    return COOTensor(coords, values, shape)


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_sum_duplicates_is_canonical(tensor):
    out = tensor.sum_duplicates()
    lin = out.linearized()
    # Sorted row-major with unique coordinates.
    assert np.all(np.diff(lin) > 0)
    assert out.shape == tensor.shape


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_sum_duplicates_preserves_dense_semantics(tensor):
    np.testing.assert_allclose(
        tensor.sum_duplicates().to_dense(), tensor.to_dense(),
        rtol=1e-12, atol=1e-12,
    )


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_sum_duplicates_is_idempotent(tensor):
    once = tensor.sum_duplicates()
    twice = once.sum_duplicates()
    assert np.array_equal(once.coords, twice.coords)
    assert np.array_equal(once.values, twice.values)


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_sum_duplicates_is_permutation_invariant(tensor):
    """Any entry order canonicalizes to the same bytes."""
    if tensor.nnz < 2:
        return
    rng = np.random.default_rng(int(tensor.nnz))
    perm = rng.permutation(tensor.nnz)
    shuffled = COOTensor(
        tensor.coords[:, perm], tensor.values[perm], tensor.shape
    )
    a = tensor.sum_duplicates()
    b = shuffled.sum_duplicates()
    assert np.array_equal(a.coords, b.coords)
    np.testing.assert_allclose(a.values, b.values, rtol=1e-12, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_duplicate_merge_sums_values(tensor):
    """nnz after merging equals the number of distinct coordinates."""
    out = tensor.sum_duplicates()
    distinct = np.unique(tensor.linearized()).shape[0]
    assert out.nnz == distinct


@st.composite
def delta_ops(draw, shape, max_ops=25):
    n = draw(st.integers(0, max_ops))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["insert", "update", "delete"]))
        coord = tuple(
            draw(st.integers(0, s - 1)) for s in shape
        )
        value = draw(
            st.floats(-50, 50, allow_nan=False, allow_infinity=False)
        )
        ops.append((kind, coord, value))
    return ops


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_delta_canonicalization_preserves_effect(data):
    """canonicalize() never changes what a batch does to a tensor."""
    tensor = data.draw(coo_tensors(max_ndim=2))
    ops = data.draw(delta_ops(tensor.shape))
    batch = DeltaBatch.from_ops(ops, tensor.shape)
    direct = batch.apply(tensor)
    canon = batch.canonicalize().apply(tensor)
    assert np.array_equal(direct.coords, canon.coords)
    np.testing.assert_allclose(
        direct.values, canon.values, rtol=1e-12, atol=1e-12
    )


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_delta_apply_result_is_canonical(data):
    tensor = data.draw(coo_tensors(max_ndim=2))
    ops = data.draw(delta_ops(tensor.shape))
    out = DeltaBatch.from_ops(ops, tensor.shape).apply(tensor)
    lin = out.linearized()
    assert np.all(np.diff(lin) > 0)
