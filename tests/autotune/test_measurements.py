"""Measurement store: bounded, associative merge, JSON round-trip."""

import math

import pytest

from repro.autotune.measurements import RECENT_WINDOW, ArmStats, MeasurementStore
from repro.errors import ConfigError


class TestArmStats:
    def test_welford_moments(self):
        s = ArmStats()
        data = [1.0, 2.0, 3.0, 4.0]
        for x in data:
            s.observe(x)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(5.0 / 3.0)
        assert s.best == 1.0

    def test_nonfinite_and_negative_rejected(self):
        s = ArmStats()
        for bad in (math.nan, math.inf, -math.inf, -1.0):
            s.observe(bad)
        assert s.count == 0
        s.observe(2.0)
        assert s.count == 1 and s.mean == 2.0

    def test_recent_window_bounded(self):
        s = ArmStats()
        for k in range(3 * RECENT_WINDOW):
            s.observe(float(k))
        assert len(s.recent) == RECENT_WINDOW
        assert s.recent_mean > s.mean  # trailing samples are the largest

    def test_recent_mean_falls_back_to_lifetime(self):
        s = ArmStats(count=5, mean=0.7)
        assert s.recent_mean == 0.7

    def test_merge_matches_pooled_stream(self):
        a, b, pooled = ArmStats(), ArmStats(), ArmStats()
        xs = [0.5, 1.5, 2.5]
        ys = [0.1, 0.9, 1.1, 3.0]
        for x in xs:
            a.observe(x)
            pooled.observe(x)
        for y in ys:
            b.observe(y)
            pooled.observe(y)
        a.merge(b)
        assert a.count == pooled.count
        assert a.mean == pytest.approx(pooled.mean)
        assert a.m2 == pytest.approx(pooled.m2)
        assert a.best == pooled.best

    def test_merge_is_associative(self):
        def stream(seed):
            s = ArmStats()
            for k in range(5):
                s.observe(0.1 * (seed + 1) * (k + 1))
            return s

        left = stream(0)
        left.merge(stream(1))
        left.merge(stream(2))
        right_tail = stream(1)
        right_tail.merge(stream(2))
        right = stream(0)
        right.merge(right_tail)
        assert left.count == right.count
        assert left.mean == pytest.approx(right.mean)
        assert left.m2 == pytest.approx(right.m2)

    def test_merge_into_empty_copies(self):
        a, b = ArmStats(), ArmStats()
        b.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert (a.count, a.mean) == (2, 2.0)

    def test_json_round_trip(self):
        s = ArmStats()
        for x in (0.2, 0.4, 0.9):
            s.observe(x)
        back = ArmStats.from_json(s.to_json())
        assert back.count == s.count
        assert back.mean == pytest.approx(s.mean)
        assert back.best == s.best
        assert back.recent == s.recent

    def test_json_round_trip_empty_best(self):
        back = ArmStats.from_json(ArmStats().to_json())
        assert back.count == 0 and back.best == math.inf


class TestMeasurementStore:
    def test_observe_and_lookup(self):
        store = MeasurementStore()
        store.observe("sig", "arm", 0.5)
        store.observe("sig", "arm", 1.5)
        assert store.trials("sig", "arm") == 2
        assert store.stats_for("sig", "arm").mean == pytest.approx(1.0)
        assert store.stats_for("sig", "other") is None
        assert store.arms("missing") == {}

    def test_config_validated(self):
        with pytest.raises(ConfigError):
            MeasurementStore(max_signatures=0)
        with pytest.raises(ConfigError):
            MeasurementStore(max_arms=1)

    def test_signature_lru_eviction(self):
        store = MeasurementStore(max_signatures=2)
        store.observe("a", "x", 0.1)
        store.observe("b", "x", 0.1)
        store.observe("a", "x", 0.1)  # refresh a's recency
        store.observe("c", "x", 0.1)  # evicts b
        assert store.signatures() == ["a", "c"]
        assert store.evicted_signatures == 1

    def test_arm_lru_eviction_per_signature(self):
        store = MeasurementStore(max_arms=2)
        store.observe("s", "a1", 0.1)
        store.observe("s", "a2", 0.1)
        store.observe("s", "a3", 0.1)
        assert sorted(store.arms("s")) == ["a2", "a3"]

    def test_merge_matches_pooled(self):
        a, b = MeasurementStore(), MeasurementStore()
        a.observe("s", "x", 1.0)
        a.observe("s", "x", 3.0)
        b.observe("s", "x", 5.0)
        b.observe("t", "y", 0.5)
        a.merge(b)
        assert a.stats_for("s", "x").count == 3
        assert a.stats_for("s", "x").mean == pytest.approx(3.0)
        assert a.stats_for("t", "y").count == 1
        assert a.summary()["samples"] == 4

    def test_merge_does_not_mutate_source(self):
        a, b = MeasurementStore(), MeasurementStore()
        b.observe("s", "x", 1.0)
        a.merge(b)
        a.observe("s", "x", 9.0)
        assert b.stats_for("s", "x").count == 1

    def test_json_round_trip(self):
        store = MeasurementStore(max_signatures=8, max_arms=4)
        store.observe("s1", "a", 0.25)
        store.observe("s1", "b", 0.75)
        store.observe("s2", "a", 1.25)
        back = MeasurementStore.from_json(store.to_json())
        assert back.max_signatures == 8 and back.max_arms == 4
        assert back.stats_for("s1", "b").mean == pytest.approx(0.75)
        assert back.summary()["samples"] == 3
