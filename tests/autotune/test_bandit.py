"""Bandit policy: budget, fair hearing, margin gate, rollback, cooldown."""

import pytest

from repro.autotune.bandit import BanditConfig, BanditPolicy
from repro.autotune.measurements import ArmStats
from repro.errors import ConfigError


def arm(count, mean, recent=None):
    s = ArmStats(count=count, mean=mean)
    s.recent = list(recent if recent is not None else [mean] * min(count, 4))
    return s


class TestConfig:
    def test_rate_range_enforced(self):
        with pytest.raises(ConfigError):
            BanditConfig(explore_rate=1.5)
        with pytest.raises(ConfigError):
            BanditConfig(explore_rate=-0.1)

    def test_trials_and_margins_enforced(self):
        with pytest.raises(ConfigError):
            BanditConfig(min_trials=0)
        with pytest.raises(ConfigError):
            BanditConfig(promote_margin=-0.1)
        with pytest.raises(ConfigError):
            BanditConfig(cooldown=-1)


class TestExplorationBudget:
    def test_realized_rate_tracks_budget(self):
        policy = BanditPolicy(BanditConfig(explore_rate=0.10, seed=3))
        stats = {"a": arm(5, 1.0), "b": arm(5, 2.0)}
        explored = sum(
            policy.pick("s", ["a", "b"], stats) is not None
            for _ in range(2000)
        )
        # The token ledger caps at the budget; the coin halves nothing
        # (it only de-phases), so the realized rate sits near 10%.
        assert 0.06 <= explored / 2000 <= 0.10

    def test_zero_rate_never_explores(self):
        policy = BanditPolicy(BanditConfig(explore_rate=0.0))
        stats = {"a": arm(5, 1.0)}
        assert all(
            policy.pick("s", ["a"], stats) is None for _ in range(100)
        )

    def test_no_challengers_no_exploration(self):
        policy = BanditPolicy(BanditConfig(explore_rate=1.0))
        assert policy.pick("s", [], {}) is None

    def test_fair_hearing_before_best_mean(self):
        # Arm "b" is below the trials floor -> it must be tried before
        # the established best-mean arm "a".
        policy = BanditPolicy(BanditConfig(explore_rate=1.0, min_trials=3))
        stats = {"a": arm(10, 0.5), "b": arm(1, 0.1)}
        picks = {
            policy.pick("s", ["a", "b"], stats)
            for _ in range(50)
        } - {None}
        assert picks == {"b"}

    def test_best_mean_after_floor(self):
        policy = BanditPolicy(BanditConfig(explore_rate=1.0, min_trials=2))
        stats = {"a": arm(5, 0.5), "b": arm(5, 0.2)}
        picks = {
            policy.pick("s", ["a", "b"], stats) for _ in range(50)
        } - {None}
        assert picks == {"b"}


class TestPromotion:
    def test_needs_champion_trials(self):
        policy = BanditPolicy(BanditConfig(min_trials=3))
        stats = {"model": arm(1, 1.0), "ch": arm(5, 0.1)}
        assert not policy.promotion("s", "model", ["ch"], stats).promote

    def test_needs_challenger_trials(self):
        policy = BanditPolicy(BanditConfig(min_trials=3))
        stats = {"model": arm(5, 1.0), "ch": arm(2, 0.1)}
        assert not policy.promotion("s", "model", ["ch"], stats).promote

    def test_margin_gate(self):
        policy = BanditPolicy(BanditConfig(min_trials=2, promote_margin=0.10))
        stats = {"model": arm(5, 1.0), "ch": arm(5, 0.95)}
        assert not policy.promotion("s", "model", ["ch"], stats).promote
        stats["ch"] = arm(5, 0.80)
        decision = policy.promotion("s", "model", ["ch"], stats)
        assert decision.promote and decision.arm_id == "ch"
        assert decision.improvement == pytest.approx(0.20)

    def test_best_challenger_wins(self):
        policy = BanditPolicy(BanditConfig(min_trials=2, promote_margin=0.10))
        stats = {"model": arm(5, 1.0), "a": arm(5, 0.6), "b": arm(5, 0.4)}
        assert policy.promotion("s", "model", ["a", "b"], stats).arm_id == "b"

    def test_cooldown_blocks_repromotion(self):
        # A demoted arm's lifetime mean still looks great; the cooldown
        # must keep it out of promotion or promote/rollback oscillates.
        policy = BanditPolicy(BanditConfig(min_trials=2, promote_margin=0.10,
                                           cooldown=16))
        stats = {"model": arm(5, 1.0), "ch": arm(8, 0.3)}
        policy.note_cooldown("s", "ch")
        assert not policy.promotion("s", "model", ["ch"], stats).promote
        assert policy.in_cooldown("s", "ch")
        # A different signature's identical arm id is unaffected.
        assert policy.promotion("other", "model", ["ch"], stats).promote


class TestRollback:
    def test_regression_detected_in_trailing_window(self):
        policy = BanditPolicy(BanditConfig(min_trials=2, rollback_margin=0.25))
        promoted = arm(20, 0.5, recent=[2.0, 2.0, 2.0])
        assert policy.should_rollback(promoted, baseline_mean=1.0)

    def test_healthy_promotion_not_rolled_back(self):
        policy = BanditPolicy(BanditConfig(min_trials=2, rollback_margin=0.25))
        promoted = arm(20, 0.5, recent=[0.5, 0.6, 0.5])
        assert not policy.should_rollback(promoted, baseline_mean=1.0)

    def test_needs_recent_samples(self):
        policy = BanditPolicy(BanditConfig(min_trials=3, rollback_margin=0.25))
        promoted = arm(20, 0.5, recent=[9.0])
        assert not policy.should_rollback(promoted, baseline_mean=1.0)

    def test_no_stats_or_baseline_is_noop(self):
        policy = BanditPolicy()
        assert not policy.should_rollback(None, baseline_mean=1.0)
        assert not policy.should_rollback(arm(5, 2.0), baseline_mean=0.0)
