"""Persistent autotune state: round-trip, guards, associative merge."""

import json

import pytest

from repro.autotune.candidates import Candidate
from repro.autotune.measurements import MeasurementStore
from repro.autotune.state import AutotuneState, ChampionRecord, PromotionEvent
from repro.machine.cost_model import DEFAULT_WEIGHTS


def record(arm_id="acc=sparse", baseline=1.0):
    return ChampionRecord(
        arm_id=arm_id,
        candidate=Candidate(arm_id=arm_id, kind="pairwise",
                            accumulator="sparse"),
        baseline_mean=baseline,
        plan={"accumulator": "sparse", "tile_l": 32, "tile_r": 32,
              "machine_name": "desktop-i7-11700F"},
        prev_plan=None,
    )


def event(ts, kind="promote"):
    return PromotionEvent(event=kind, sig_key="s", arm_id="acc=sparse",
                          reason="test", timestamp=ts)


class TestRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        path = tmp_path / "state.json"
        state = AutotuneState("desktop-i7-11700F", path=str(path))
        state.weights = DEFAULT_WEIGHTS.scaled(3.0)
        state.store.observe("sig", "acc=sparse", 0.01)
        state.store.observe("sig", "model", 0.02)
        state.set_champion("sig", record())
        state.record_event(event(1.0))
        assert state.flush() == str(path)

        fresh = AutotuneState("desktop-i7-11700F")
        assert fresh.load(path)
        assert fresh.weights.query_cost == pytest.approx(
            3.0 * DEFAULT_WEIGHTS.query_cost)
        assert fresh.store.trials("sig", "acc=sparse") == 1
        assert fresh.champion("sig").arm_id == "acc=sparse"
        assert fresh.champion("sig").plan["tile_l"] == 32
        assert len(fresh.history) == 1
        assert fresh.loaded_from == str(path)

    def test_constructor_warm_starts_from_existing_file(self, tmp_path):
        path = tmp_path / "state.json"
        state = AutotuneState("m", path=str(path))
        state.store.observe("sig", "a", 0.5)
        state.flush()
        warm = AutotuneState("m", path=str(path))
        assert warm.store.trials("sig", "a") == 1

    def test_save_requires_some_path(self):
        with pytest.raises(ValueError):
            AutotuneState("m").save()
        assert AutotuneState("m").flush() is None


class TestGuards:
    def test_machine_mismatch_refused(self, tmp_path):
        path = tmp_path / "state.json"
        AutotuneState("desktop-i7-11700F", path=str(path)).save()
        other = AutotuneState("server-xeon-6330")
        assert not other.load(path)
        assert "desktop-i7-11700F" in other.load_error

    def test_corrupt_file_degrades_cold(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{not json")
        state = AutotuneState("m", path=str(path))
        assert state.load_error is not None
        assert len(state.champions) == 0

    def test_version_skew_refused(self, tmp_path):
        path = tmp_path / "state.json"
        doc = AutotuneState("m").to_json()
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        state = AutotuneState("m")
        assert not state.load(path)
        assert "version" in state.load_error


class TestMerge:
    def _shard(self, samples, champion=None, events=()):
        state = AutotuneState("m", store=MeasurementStore())
        for sig, arm_id, secs in samples:
            state.store.observe(sig, arm_id, secs)
        if champion is not None:
            state.set_champion(*champion)
        for e in events:
            state.record_event(e)
        return state

    def test_stores_merge_associatively(self):
        shards = [
            self._shard([("s", "a", 0.1 * (k + 1)), ("s", "b", 0.2)])
            for k in range(3)
        ]
        left = self._shard([])
        left.merge(shards[0])
        left.merge(shards[1])
        left.merge(shards[2])

        tail = self._shard([])
        tail.merge(shards[1])
        tail.merge(shards[2])
        right = self._shard([])
        right.merge(shards[0])
        right.merge(tail)

        ls = left.store.stats_for("s", "a")
        rs = right.store.stats_for("s", "a")
        assert ls.count == rs.count == 3
        assert ls.mean == pytest.approx(rs.mean)
        assert ls.m2 == pytest.approx(rs.m2)

    def test_local_champion_wins_merge(self):
        mine = self._shard([], champion=("s", record("acc=sparse")))
        theirs = self._shard([], champion=("s", record("tile=16")))
        mine.merge(theirs)
        assert mine.champion("s").arm_id == "acc=sparse"
        # A signature only the peer promoted is adopted.
        theirs.set_champion("t", record("tile=16"))
        mine.merge(theirs)
        assert mine.champion("t").arm_id == "tile=16"

    def test_histories_interleave_by_timestamp(self):
        a = self._shard([], events=[event(1.0), event(3.0)])
        b = self._shard([], events=[event(2.0, "rollback")])
        a.merge(b)
        assert [e.timestamp for e in a.history] == [1.0, 2.0, 3.0]

    def test_summary_counts(self):
        state = self._shard(
            [("s", "a", 0.1)], champion=("s", record()),
            events=[event(1.0), event(2.0, "rollback")],
        )
        s = state.summary()
        assert s["champions"] == 1
        assert s["promotions"] == 1 and s["rollbacks"] == 1
        assert s["samples"] == 1
