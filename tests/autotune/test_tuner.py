"""OnlineTuner: eligibility, promotion, rollback, warm start, no pollution."""

import numpy as np
import pytest

from repro.autotune import CHAMPION_ARM, OnlineTuner, TunerConfig
from repro.autotune.candidates import pairwise_candidates
from repro.data.random_tensors import random_coo
from repro.errors import ConfigError
from repro.machine.specs import DESKTOP
from repro.runtime import ContractionRuntime
from repro.runtime.signature import signature_for


def operands(seed=0, shape_l=(40, 36), shape_r=(36, 44), nnz=300):
    left = random_coo(shape_l, nnz=nnz, seed=seed)
    right = random_coo(shape_r, nnz=nnz, seed=seed + 1)
    return left, right


def make_tuner(runtime=None, **overrides):
    config = TunerConfig(**{
        "explore_rate": 0.5, "min_trials": 2, "promote_margin": 0.05,
        "rollback_margin": 0.25, "refit_every": 4,
        "default_eligible": True, **overrides,
    })
    tuner = OnlineTuner(DESKTOP, config)
    if runtime is not None:
        tuner.attach(runtime)
    return tuner


def promote(tuner, sig, arm_id, *, champ_s=10e-3, chall_s=1e-3, rounds=3):
    """Feed synthetic skew until the challenger is promoted."""
    for _ in range(rounds):
        tuner.observe_pairwise(sig, CHAMPION_ARM, champ_s)
        tuner.observe_pairwise(sig, arm_id, chall_s)
    return tuner.state.champion(sig.key)


class TestConfig:
    def test_ranges_validated(self):
        with pytest.raises(ConfigError):
            TunerConfig(explore_rate=2.0)
        with pytest.raises(ConfigError):
            TunerConfig(refit_every=0)


class TestEligibility:
    def test_default_ineligible_never_routes(self):
        tuner = make_tuner(default_eligible=False)
        left, right = operands()
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        assert all(tuner.route_pairwise(sig) is None for _ in range(50))

    def test_serving_bracket_controls_exploration(self):
        tuner = make_tuner(default_eligible=False, explore_rate=1.0)
        left, right = operands()
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        with tuner.serving(eligible=True):
            picks = [tuner.route_pairwise(sig) for _ in range(50)]
        assert any(p is not None for p in picks)
        with tuner.serving(eligible=False):
            assert all(
                tuner.route_pairwise(sig) is None for _ in range(20)
            )

    def test_bracket_restores_on_exit(self):
        tuner = make_tuner(default_eligible=False)
        with tuner.serving(eligible=True):
            pass
        assert not tuner._eligible()


class TestPromotionAndRollback:
    def test_promotion_installs_plan_and_keeps_prev(self):
        runtime = ContractionRuntime(machine=DESKTOP)
        tuner = make_tuner(runtime)
        left, right = operands()
        runtime.contract(left, right, [(1, 0)])  # caches the model plan
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        arms = pairwise_candidates(sig, DESKTOP)
        plan_arm = next(
            a for a in arms if a.accumulator != "auto" or a.tile_size
        )
        record = promote(tuner, sig, plan_arm.arm_id)
        assert record is not None and record.arm_id == plan_arm.arm_id
        assert record.plan is not None
        assert record.prev_plan is not None  # pre-promotion snapshot
        installed = runtime.plan_cache.peek_key(sig.key)
        assert installed.accumulator == record.plan["accumulator"]
        assert installed.tile_l == record.plan["tile_l"]

    def test_rollback_restores_prev_plan_and_cools_arm(self):
        runtime = ContractionRuntime(machine=DESKTOP)
        tuner = make_tuner(runtime)
        left, right = operands()
        runtime.contract(left, right, [(1, 0)])
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        arm_id = pairwise_candidates(sig, DESKTOP)[0].arm_id
        record = promote(tuner, sig, arm_id)
        prev = dict(record.prev_plan)
        for _ in range(8):  # regressed champion-path samples
            tuner.observe_pairwise(sig, None, 100e-3)
        assert tuner.state.champion(sig.key) is None
        assert tuner.rollbacks == 1
        restored = runtime.plan_cache.peek_key(sig.key)
        assert restored.tile_l == prev["tile_l"]
        assert restored.accumulator == prev["accumulator"]
        assert tuner.policy.in_cooldown(sig.key, arm_id)
        events = [e.event for e in tuner.state.history]
        assert events == ["promote", "rollback"]

    def test_no_oscillation_after_rollback(self):
        tuner = make_tuner()
        left, right = operands()
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        arm_id = pairwise_candidates(sig, DESKTOP)[0].arm_id
        promote(tuner, sig, arm_id)
        for _ in range(8):
            tuner.observe_pairwise(sig, None, 100e-3)
        # More champion samples must not instantly re-promote the
        # cooled arm off its still-shiny lifetime mean.
        for _ in range(4):
            tuner.observe_pairwise(sig, CHAMPION_ARM, 10e-3)
        assert tuner.state.champion(sig.key) is None
        assert tuner.promotions == 1

    def test_backend_promotion_skips_plan_install(self):
        tuner = make_tuner(backend_arms=True)
        left, right = operands()
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        backend_arms = [
            a for a in pairwise_candidates(sig, DESKTOP)
            if a.backend is not None
        ]
        if not backend_arms:
            pytest.skip("no alternate kernel backends detected")
        record = promote(tuner, sig, backend_arms[0].arm_id)
        assert record is not None and record.plan is None
        assert tuner.preferred_backend(sig) == backend_arms[0].backend


class TestWarmStart:
    def test_attach_replays_champions_and_weights(self, tmp_path):
        path = tmp_path / "state.json"
        runtime = ContractionRuntime(machine=DESKTOP)
        tuner = make_tuner(runtime, state_path=str(path))
        left, right = operands()
        runtime.contract(left, right, [(1, 0)])
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        arms = pairwise_candidates(sig, DESKTOP)
        plan_arm = next(
            a for a in arms if a.accumulator != "auto" or a.tile_size
        )
        record = promote(tuner, sig, plan_arm.arm_id)
        assert record is not None
        tuner.flush()

        runtime2 = ContractionRuntime(machine=DESKTOP)
        tuner2 = OnlineTuner(DESKTOP, TunerConfig(
            state_path=str(path), default_eligible=False,
        )).attach(runtime2)
        replayed = runtime2.plan_cache.peek_key(sig.key)
        assert replayed is not None
        assert replayed.tile_l == record.plan["tile_l"]
        assert tuner2.state.champion(sig.key).arm_id == plan_arm.arm_id
        if tuner.state.weights is not None:
            assert runtime2.calibrator.weights == tuner.state.weights


class TestRuntimeIntegration:
    def test_exploration_never_pollutes_champion_entry(self):
        runtime = ContractionRuntime(machine=DESKTOP)
        make_tuner(runtime, explore_rate=1.0)
        left, right = operands()
        reference = runtime.contract(left, right, [(1, 0)]).to_dense()
        sig = signature_for(left, right, [(1, 0)], DESKTOP)
        champion_before = runtime.plan_cache.peek_key(sig.key)
        max_diff = 0.0
        for _ in range(30):
            out = runtime.contract(left, right, [(1, 0)])
            max_diff = max(
                max_diff, float(np.abs(out.to_dense() - reference).max())
            )
        tuner = runtime.tuner
        assert tuner.metrics()["explorations"] > 0
        # Explored calls re-key (accumulator/tile overrides land in the
        # signature), so the champion's entry holds the champion's plan
        # unless an explicit promotion replaced it.
        champion_after = runtime.plan_cache.peek_key(sig.key)
        if tuner.state.champion(sig.key) is None:
            assert champion_after == champion_before
        scale = max(1.0, float(np.abs(reference).max()))
        assert max_diff <= 1e-8 * scale

    def test_override_calls_are_not_championable(self):
        runtime = ContractionRuntime(machine=DESKTOP)
        tuner = make_tuner(runtime, explore_rate=1.0)
        left, right = operands()
        for _ in range(10):
            runtime.contract(left, right, [(1, 0)], accumulator="sparse")
            runtime.contract(left, right, [(1, 0)], tile_size=16)
        assert tuner.metrics()["eligible_calls"] == 0
        assert tuner.metrics()["samples"] == 0

    def test_metrics_are_flat_counters(self):
        tuner = make_tuner()
        metrics = tuner.metrics()
        assert set(metrics) == {
            "eligible_calls", "explorations", "promotions", "rollbacks",
            "refits", "signatures", "samples", "champions",
        }
        assert all(isinstance(v, int) for v in metrics.values())
