"""Differential fuzz: explored executions equal champion executions.

Every bandit arm varies *how* a contraction runs — accumulator flip,
tile size, kernel backend — never what it computes.  This suite fuzzes
exactly that contract: for random problems, the result of executing any
challenger candidate must match the champion's result, with coordinates
bit-identical and values within the repo's cross-backend tolerance
(dense reconstruction at ``rtol=1e-8, atol=1e-10``, the policy of
``docs/backends.md`` — accumulator and tile changes reorder float
additions, so literal bit equality on values is not the contract).
"""

import numpy as np
import pytest

from repro.autotune.candidates import pairwise_candidates
from repro.backends import backend_status
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.runtime import ContractionRuntime
from repro.runtime.signature import signature_for


def _problem(seed):
    rng = np.random.default_rng(0xA070 + seed)
    L = int(rng.integers(12, 64))
    C = int(rng.integers(8, 48))
    R = int(rng.integers(12, 64))
    nnz = int(rng.integers(20, 400))
    left = random_coo((L, C), nnz=min(nnz, L * C), seed=seed * 2 + 1)
    right = random_coo((C, R), nnz=min(nnz, C * R), seed=seed * 2 + 2)
    return left, right


def _assert_equivalent(explored, champion, label):
    np.testing.assert_array_equal(
        explored.coords, champion.coords, err_msg=f"coords differ: {label}"
    )
    np.testing.assert_allclose(
        explored.to_dense(), champion.to_dense(),
        rtol=1e-8, atol=1e-10, err_msg=f"values differ: {label}"
    )


@pytest.mark.parametrize("seed", range(10))
def test_every_candidate_arm_matches_champion(seed):
    """Direct execution of each arm's overrides equals the champion."""
    left, right = _problem(seed)
    runtime = ContractionRuntime(machine=DESKTOP)
    champion = runtime.contract(left, right, [(1, 0)])
    sig = signature_for(left, right, [(1, 0)], DESKTOP)
    arms = pairwise_candidates(sig, DESKTOP)
    assert arms, "candidate enumeration must offer at least one arm"
    for candidate in arms:
        if candidate.backend is not None:
            available, _ = backend_status()[candidate.backend]
            if not available:
                continue
        explored = runtime.contract(
            left, right, [(1, 0)],
            accumulator=candidate.accumulator,
            tile_size=candidate.tile_size,
            backend=candidate.backend,
        )
        _assert_equivalent(
            explored, champion, f"seed={seed} arm={candidate.arm_id}"
        )


@pytest.mark.parametrize("seed", range(6))
def test_tuner_routed_exploration_matches_unexplored_run(seed):
    """The integrated path: a tuner-driven runtime (exploring on every
    eligible call) returns the same results as a tuner-free runtime."""
    from repro.autotune import OnlineTuner, TunerConfig

    left, right = _problem(100 + seed)
    plain = ContractionRuntime(machine=DESKTOP)
    reference = plain.contract(left, right, [(1, 0)])

    tuned = ContractionRuntime(machine=DESKTOP)
    tuner = OnlineTuner(DESKTOP, TunerConfig(
        explore_rate=1.0, min_trials=2, promote_margin=0.05,
        default_eligible=True, seed=seed,
    )).attach(tuned)
    for _ in range(12):
        out = tuned.contract(left, right, [(1, 0)])
        _assert_equivalent(out, reference, f"seed={seed}")
    assert tuner.metrics()["explorations"] > 0
