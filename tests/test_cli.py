"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main
from repro.data.random_tensors import random_coo
from repro.tensors.io import read_tns, write_tns


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "chic_01"])
        assert args.method == "fastcc"
        assert args.workers == 1

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "chic_01", "--method", "gpu"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "desktop-i7-11700F" in out
        assert "chic_01" in out

    def test_plan(self, capsys):
        rc = main([
            "plan", "--L", "1000", "--R", "1000", "--C", "100",
            "--nnz-l", "5000", "--nnz-r", "5000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decision:" in out

    def test_run_small_case(self, capsys):
        assert main(["run", "uber_123", "--method", "fastcc"]) == 0
        out = capsys.readouterr().out
        assert "output: nnz=" in out

    def test_run_unknown_case(self):
        with pytest.raises(KeyError):
            main(["run", "nonexistent_case"])

    def test_contract_files(self, tmp_path, capsys):
        from repro.tensors.coo import COOTensor
        import numpy as np

        # .tns files carry no shape header: the reader infers extents
        # from the max coordinate, so pin the corners explicitly.
        a = random_coo((6, 8), nnz=12, seed=1)
        a = COOTensor(
            np.hstack([a.coords, [[5], [7]]]),
            np.concatenate([a.values, [0.5]]), (6, 8),
        )
        b = random_coo((8, 5), nnz=10, seed=2)
        b = COOTensor(
            np.hstack([b.coords, [[7], [4]]]),
            np.concatenate([b.values, [0.5]]), (8, 5),
        )
        pa, pb = tmp_path / "a.tns", tmp_path / "b.tns"
        out_path = tmp_path / "o.tns"
        write_tns(a, pa)
        write_tns(b, pb)
        rc = main([
            "contract", str(pa), str(pb),
            "--pairs", "1:0", "--output", str(out_path),
        ])
        assert rc == 0
        result = read_tns(out_path)
        import numpy as np

        expected = a.to_dense() @ b.to_dense()
        got = np.zeros_like(expected)
        got[: result.shape[0], : result.shape[1]] = result.to_dense()
        np.testing.assert_allclose(got, expected, rtol=1e-9)


class TestDnfHandling:
    def test_dnf_exits_cleanly(self, capsys):
        rc = main(["run", "NIPS_2", "--accumulator", "dense"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "DNF" in out

    def test_server_machine_flag(self, capsys):
        rc = main(["run", "uber_123", "--machine", "server"])
        assert rc == 0
        assert "server-tr-3990x" in capsys.readouterr().out
