"""Unit tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.data.random_tensors import random_coo
from repro.tensors.io import read_tns, write_tns


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "chic_01"])
        assert args.method == "fastcc"
        assert args.workers == 1

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "chic_01", "--method", "gpu"])

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "uber_123", "G-ovov"])
        assert args.cases == ["uber_123", "G-ovov"]
        assert args.repeat == 1
        assert args.machine == "desktop"
        assert args.cache_file is None

    def test_batch_needs_at_least_one_case(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == "reject"
        assert args.capacity == 64
        assert args.workers == 2
        assert args.closed == 0
        assert not args.demo

    def test_serve_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "drop"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "desktop-i7-11700F" in out
        assert "chic_01" in out

    def test_plan(self, capsys):
        rc = main([
            "plan", "--L", "1000", "--R", "1000", "--C", "100",
            "--nnz-l", "5000", "--nnz-r", "5000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decision:" in out

    def test_run_small_case(self, capsys):
        assert main(["run", "uber_123", "--method", "fastcc"]) == 0
        out = capsys.readouterr().out
        assert "output: nnz=" in out

    def test_run_unknown_case(self):
        with pytest.raises(KeyError):
            main(["run", "nonexistent_case"])

    def test_contract_files(self, tmp_path, capsys):
        from repro.tensors.coo import COOTensor
        import numpy as np

        # .tns files carry no shape header: the reader infers extents
        # from the max coordinate, so pin the corners explicitly.
        a = random_coo((6, 8), nnz=12, seed=1)
        a = COOTensor(
            np.hstack([a.coords, [[5], [7]]]),
            np.concatenate([a.values, [0.5]]), (6, 8),
        )
        b = random_coo((8, 5), nnz=10, seed=2)
        b = COOTensor(
            np.hstack([b.coords, [[7], [4]]]),
            np.concatenate([b.values, [0.5]]), (8, 5),
        )
        pa, pb = tmp_path / "a.tns", tmp_path / "b.tns"
        out_path = tmp_path / "o.tns"
        write_tns(a, pa)
        write_tns(b, pb)
        rc = main([
            "contract", str(pa), str(pb),
            "--pairs", "1:0", "--output", str(out_path),
        ])
        assert rc == 0
        result = read_tns(out_path)
        import numpy as np

        expected = a.to_dense() @ b.to_dense()
        got = np.zeros_like(expected)
        got[: result.shape[0], : result.shape[1]] = result.to_dense()
        np.testing.assert_allclose(got, expected, rtol=1e-9)


class TestBatchCommand:
    def test_two_step_pipeline_reports_cache_hits(self, capsys):
        """A repeated registry step must hit the plan cache and reuse
        tables, and the summary must say so."""
        rc = main(["batch", "uber_123", "uber_123"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan cache: 1 hits / 1 misses" in out
        assert "hit rate 50%" in out
        assert "tables_reused=L+R" in out
        assert "tiled tables: 2 reused / 2 built" in out
        assert "estimated speedup" in out
        assert "cost-model calibration over 2 runs" in out

    def test_repeat_flag_multiplies_steps(self, capsys):
        rc = main(["batch", "uber_123", "--repeat", "3", "--no-calibrate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch of 3 contractions" in out
        assert "plan cache: 2 hits / 1 misses" in out
        assert "calibration" not in out

    def test_cache_file_round_trip(self, tmp_path, capsys):
        """Plans persisted by one invocation pre-warm the next."""
        cache = tmp_path / "plans.json"
        assert main(["batch", "uber_123", "--cache-file", str(cache)]) == 0
        assert cache.exists()
        capsys.readouterr()
        assert main(["batch", "uber_123", "--cache-file", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "plan cache: 1 hits / 0 misses" in out


class TestServeCommand:
    def test_demo_quick_passes_the_smoke_bars(self, capsys):
        """The CI smoke step: bounded queue holds, nothing fails."""
        assert main(["serve", "--demo", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "demo PASS" in out
        assert "phase 2 — overload" in out

    def test_open_loop_run_prints_slo_report(self, capsys):
        rc = main([
            "serve", "--requests", "8", "--rate", "200",
            "--signatures", "2", "--capacity", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "open-loop: 8 requests" in out
        assert "statuses:" in out

    def test_closed_loop_json_document(self, capsys):
        rc = main([
            "serve", "--requests", "6", "--closed", "2", "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["load"]["mode"] == "closed"
        assert doc["load"]["statuses"].get("ok") == 6
        assert "queue" in doc["service"]
        assert "latency" in doc["service"]


class TestDnfHandling:
    def test_dnf_exits_cleanly(self, capsys):
        rc = main(["run", "NIPS_2", "--accumulator", "dense"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "DNF" in out

    def test_server_machine_flag(self, capsys):
        rc = main(["run", "uber_123", "--machine", "server"])
        assert rc == 0
        assert "server-tr-3990x" in capsys.readouterr().out


class TestAutotuneCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["autotune", "--self-check"])
        assert args.self_check and not args.quick
        assert args.state is None and args.seed == 0

    def test_serve_autotune_flags(self):
        args = build_parser().parse_args(
            ["serve", "--demo", "--autotune", "--autotune-rate", "0.2",
             "--autotune-state", "s.json"]
        )
        assert args.autotune and args.autotune_rate == 0.2
        assert args.autotune_state == "s.json"

    def test_self_check_quick_passes(self, capsys):
        assert main(["autotune", "--self-check", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "autotune self-check" in out
        assert "FAIL" not in out

    def test_missing_state_is_usage_error(self, capsys):
        assert main(["autotune"]) == 2

    def test_reset_then_inspect_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "state.json")
        assert main(["autotune", "--state", path, "--reset"]) == 0
        assert main(["autotune", "--state", path]) == 0
        out = capsys.readouterr().out
        assert "champions: 0 promoted" in out
        assert main(["autotune", "--state", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["champions"] == 0 and doc["samples"] == 0

    def test_replay_on_empty_state(self, tmp_path, capsys):
        path = str(tmp_path / "state.json")
        main(["autotune", "--state", path, "--reset"])
        capsys.readouterr()
        assert main(["autotune", "--state", path, "--replay"]) == 0
        assert "no promotion history" in capsys.readouterr().out

    def test_unreadable_state_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["autotune", "--state", str(path)]) == 1

    def test_serve_demo_with_autotune(self, tmp_path, capsys):
        path = str(tmp_path / "autotune.json")
        code = main(["serve", "--demo", "--quick",
                     "--autotune", "--autotune-state", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "autotune:" in out
