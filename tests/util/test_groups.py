"""Unit and property tests for the grouped-index kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.groups import (
    group_boundaries,
    grouped_cartesian,
    match_sorted_keys,
    segment_sum,
)


class TestGroupBoundaries:
    def test_basic(self):
        keys, offsets = group_boundaries(np.array([1, 1, 3, 3, 3, 7]))
        np.testing.assert_array_equal(keys, [1, 3, 7])
        np.testing.assert_array_equal(offsets, [0, 2, 5, 6])

    def test_single_group(self):
        keys, offsets = group_boundaries(np.array([5, 5, 5]))
        np.testing.assert_array_equal(keys, [5])
        np.testing.assert_array_equal(offsets, [0, 3])

    def test_all_distinct(self):
        keys, offsets = group_boundaries(np.arange(4))
        np.testing.assert_array_equal(keys, np.arange(4))
        np.testing.assert_array_equal(offsets, [0, 1, 2, 3, 4])

    def test_empty(self):
        keys, offsets = group_boundaries(np.array([], dtype=np.int64))
        assert keys.size == 0
        np.testing.assert_array_equal(offsets, [0])


class TestMatchSortedKeys:
    def test_basic(self):
        common, ia, ib = match_sorted_keys(np.array([1, 3, 5]), np.array([3, 4, 5]))
        np.testing.assert_array_equal(common, [3, 5])
        np.testing.assert_array_equal(ia, [1, 2])
        np.testing.assert_array_equal(ib, [0, 2])

    def test_disjoint(self):
        common, ia, ib = match_sorted_keys(np.array([1]), np.array([2]))
        assert common.size == 0

    def test_empty(self):
        common, _, _ = match_sorted_keys(np.array([]), np.array([1, 2]))
        assert common.size == 0


class TestGroupedCartesian:
    def test_single_group(self):
        ia, ib = grouped_cartesian(
            np.array([0]), np.array([2]), np.array([10]), np.array([3])
        )
        np.testing.assert_array_equal(ia, [0, 0, 0, 1, 1, 1])
        np.testing.assert_array_equal(ib, [10, 11, 12, 10, 11, 12])

    def test_multiple_groups(self):
        ia, ib = grouped_cartesian(
            np.array([0, 5]), np.array([1, 2]),
            np.array([0, 7]), np.array([2, 1]),
        )
        np.testing.assert_array_equal(ia, [0, 0, 5, 6])
        np.testing.assert_array_equal(ib, [0, 1, 7, 7])

    def test_empty_groups_skipped(self):
        ia, ib = grouped_cartesian(
            np.array([0, 1]), np.array([0, 2]),
            np.array([0, 3]), np.array([2, 1]),
        )
        np.testing.assert_array_equal(ia, [1, 2])
        np.testing.assert_array_equal(ib, [3, 3])

    def test_no_groups(self):
        ia, ib = grouped_cartesian(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
        )
        assert ia.size == 0 and ib.size == 0

    def test_guard(self):
        with pytest.raises(MemoryError):
            grouped_cartesian(
                np.array([0]), np.array([10_000]),
                np.array([0]), np.array([10_000]),
                max_pairs=1000,
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            grouped_cartesian(np.array([0]), np.array([1, 2]),
                              np.array([0]), np.array([1]))


class TestSegmentSum:
    def test_basic(self):
        keys, sums = segment_sum(np.array([3, 1, 3]), np.array([1.0, 2.0, 4.0]))
        np.testing.assert_array_equal(keys, [1, 3])
        np.testing.assert_array_equal(sums, [2.0, 5.0])

    def test_empty(self):
        keys, sums = segment_sum(np.array([]), np.array([]))
        assert keys.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            segment_sum(np.array([1, 2]), np.array([1.0]))


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(st.tuples(st.integers(0, 20), st.floats(-5, 5)), max_size=50)
)
def test_segment_sum_matches_dict(pairs):
    keys = np.array([k for k, _ in pairs], dtype=np.int64)
    vals = np.array([v for _, v in pairs])
    got_k, got_s = segment_sum(keys, vals)
    model = {}
    for k, v in pairs:
        model[k] = model.get(k, 0.0) + v
    assert got_k.tolist() == sorted(model)
    assert got_s.tolist() == pytest.approx([model[k] for k in sorted(model)])


@settings(max_examples=60, deadline=None)
@given(
    groups=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=8)
)
def test_grouped_cartesian_matches_nested_loops(groups):
    """Property: the expansion equals the naive per-group double loop."""
    starts_a = np.cumsum([0] + [a for a, _ in groups])[:-1]
    starts_b = np.cumsum([0] + [b for _, b in groups])[:-1]
    counts_a = np.array([a for a, _ in groups], dtype=np.int64)
    counts_b = np.array([b for _, b in groups], dtype=np.int64)
    ia, ib = grouped_cartesian(starts_a, counts_a, starts_b, counts_b)
    expected = []
    for g, (na, nb) in enumerate(groups):
        for i in range(na):
            for j in range(nb):
                expected.append((starts_a[g] + i, starts_b[g] + j))
    assert list(zip(ia.tolist(), ib.tolist())) == expected
