"""Unit tests for the timing helpers."""

import time

import pytest

from repro.util.timing import Timer, median_time


class TestTimer:
    def test_single_lap(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        assert len(t.laps) == 1

    def test_accumulates(self):
        t = Timer()
        for _ in range(3):
            with t:
                time.sleep(0.002)
        assert len(t.laps) == 3
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == []


class TestMedianTime:
    def test_returns_median(self):
        calls = []

        def fn():
            calls.append(1)

        out = median_time(fn, repeats=5)
        assert len(calls) == 5
        assert out >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            median_time(lambda: None, repeats=0)
