"""Unit tests for the array helpers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.util.arrays import (
    as_index_array,
    as_value_array,
    ceil_div,
    next_power_of_two,
    prev_power_of_two,
)


class TestAsIndexArray:
    def test_int_passthrough(self):
        a = as_index_array([1, 2, 3])
        assert a.dtype == np.int64

    def test_integral_floats(self):
        a = as_index_array(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(a, [1, 2])

    def test_fractional_floats_rejected(self):
        with pytest.raises(ShapeError):
            as_index_array(np.array([1.5]))

    def test_smaller_int_dtypes(self):
        a = as_index_array(np.array([1], dtype=np.int8))
        assert a.dtype == np.int64

    def test_copy_flag(self):
        src = np.array([1, 2], dtype=np.int64)
        out = as_index_array(src, copy=True)
        out[0] = 99
        assert src[0] == 1

    def test_contiguity(self):
        src = np.arange(10, dtype=np.int64)[::2]
        out = as_index_array(src)
        assert out.flags["C_CONTIGUOUS"]


class TestAsValueArray:
    def test_dtype(self):
        assert as_value_array([1, 2]).dtype == np.float64


class TestIntHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    @pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (2, 2), (3, 4),
                                            (4, 4), (1000, 1024)])
    def test_next_power_of_two(self, n, expected):
        assert next_power_of_two(n) == expected

    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 2), (4, 4),
                                            (1000, 512), (1024, 1024)])
    def test_prev_power_of_two(self, n, expected):
        assert prev_power_of_two(n) == expected

    def test_prev_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            prev_power_of_two(0)

    def test_duality(self):
        for n in (1, 2, 5, 17, 300):
            assert prev_power_of_two(n) <= n <= next_power_of_two(n)
