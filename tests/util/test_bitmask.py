"""Unit and property tests for the packed bitmask."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitmask import PackedBitmask


class TestBasics:
    def test_initially_clear(self):
        bm = PackedBitmask(100)
        assert not bm.test(np.arange(100)).any()
        assert bm.count() == 0

    def test_set_and_test(self):
        bm = PackedBitmask(128)
        fresh = bm.test_and_set(np.array([0, 63, 64, 127]))
        assert fresh.all()
        assert bm.test(np.array([0, 63, 64, 127])).all()
        assert not bm.test(np.array([1, 62, 65])).any()

    def test_second_set_not_fresh(self):
        bm = PackedBitmask(64)
        bm.test_and_set(np.array([5]))
        fresh = bm.test_and_set(np.array([5, 6]))
        np.testing.assert_array_equal(fresh, [False, True])

    def test_duplicates_in_batch_fresh_once(self):
        bm = PackedBitmask(64)
        fresh = bm.test_and_set(np.array([9, 9, 9, 3, 9]))
        assert fresh.sum() == 2  # one for 9, one for 3
        assert fresh[0]  # the first occurrence of 9
        assert not fresh[1] and not fresh[2] and not fresh[4]

    def test_clear(self):
        bm = PackedBitmask(64)
        bm.test_and_set(np.array([1, 2, 3]))
        bm.clear(np.array([2]))
        np.testing.assert_array_equal(
            bm.test(np.array([1, 2, 3])), [True, False, True]
        )

    def test_clear_all(self):
        bm = PackedBitmask(256)
        bm.test_and_set(np.arange(0, 256, 3))
        bm.clear_all()
        assert bm.count() == 0

    def test_count(self):
        bm = PackedBitmask(1000)
        bm.test_and_set(np.arange(0, 1000, 7))
        assert bm.count() == len(range(0, 1000, 7))

    def test_bounds_checked(self):
        bm = PackedBitmask(10)
        with pytest.raises(IndexError):
            bm.test(np.array([10]))
        with pytest.raises(IndexError):
            bm.test_and_set(np.array([-1]))

    def test_empty_batch(self):
        bm = PackedBitmask(10)
        assert bm.test_and_set(np.array([], dtype=np.int64)).size == 0

    def test_memory_footprint_is_one_bit_per_cell(self):
        # The paper's T_L*T_R/8 bytes (rounded to words).
        bm = PackedBitmask(512 * 512)
        assert bm.nbytes == 512 * 512 // 8

    def test_zero_bits(self):
        bm = PackedBitmask(0)
        assert bm.count() == 0


@settings(max_examples=60, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(0, 127), max_size=30), max_size=6
    )
)
def test_matches_bool_array_model(batches):
    """Property: packed semantics equal a plain bool-array reference."""
    bm = PackedBitmask(128)
    model = np.zeros(128, dtype=bool)
    for batch in batches:
        pos = np.array(batch, dtype=np.int64)
        fresh = bm.test_and_set(pos)
        # Reference: sequential test-and-set.
        expected_fresh = []
        for p in batch:
            expected_fresh.append(not model[p])
            model[p] = True
        np.testing.assert_array_equal(fresh, expected_fresh)
    np.testing.assert_array_equal(bm.to_bool_array(), model)
    assert bm.count() == int(model.sum())
