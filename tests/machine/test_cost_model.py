"""Unit tests for the Table 1 / Section 5.3 cost model."""

import pytest

from repro.machine.cost_model import AccessCostModel, ProblemShape
from repro.machine.specs import DESKTOP


def model(L=100, R=200, C=50, nnz_L=500, nnz_R=800, machine=None):
    return AccessCostModel(ProblemShape(L, R, C, nnz_L, nnz_R), machine)


class TestTable1Forms:
    def test_ci_row(self):
        m = model()
        e = m.ci()
        assert e.queries == 100 * 200
        assert e.data_volume == 100 * 800 + 200 * 500
        assert e.accumulator_cells == 1

    def test_cm_row(self):
        m = model()
        e = m.cm()
        assert e.queries == 100 + 500
        assert e.data_volume == pytest.approx(500 + 500 * 800 / 50)
        assert e.accumulator_cells == 200

    def test_co_row(self):
        m = model()
        e = m.co()
        assert e.queries == 2 * 50
        assert e.data_volume == 500 + 800
        assert e.accumulator_cells == 100 * 200

    def test_ordering_queries(self):
        # CO < CM < CI in queries for typical sparse problems.
        m = model(L=1000, R=1000, C=100, nnz_L=5000, nnz_R=5000)
        assert m.co().queries < m.cm().queries < m.ci().queries

    def test_ordering_volume(self):
        m = model(L=1000, R=1000, C=100, nnz_L=5000, nnz_R=5000)
        assert m.co().data_volume < m.cm().data_volume < m.ci().data_volume

    def test_ordering_workspace(self):
        m = model()
        assert (
            m.ci().accumulator_cells
            < m.cm().accumulator_cells
            < m.co().accumulator_cells
        )

    def test_all_untiled(self):
        assert [e.scheme for e in model().all_untiled()] == ["CI", "CM", "CO"]


class TestTiledCO:
    def test_single_tile_equals_untiled(self):
        m = model()
        tiled = m.tiled_co(100, 200)
        untiled = m.co()
        assert tiled.queries == untiled.queries
        assert tiled.data_volume == untiled.data_volume
        assert tiled.accumulator_cells == untiled.accumulator_cells

    def test_queries_scale_with_grid(self):
        m = model()
        t1 = m.tiled_co(50, 100)  # 2x2 grid
        assert t1.queries == 2 * 50 * 4

    def test_volume_inverse_in_tile_size(self):
        m = model(L=1024, R=1024, C=64, nnz_L=4096, nnz_R=4096)
        big = m.tiled_co(512, 512)
        small = m.tiled_co(128, 128)
        assert small.data_volume > big.data_volume

    def test_accumulator_capped_by_tile(self):
        m = model()
        assert m.tiled_co(10, 20).accumulator_cells == 200


class TestProblemShape:
    def test_densities(self):
        s = ProblemShape(10, 20, 5, 25, 40)
        assert s.density_L == 25 / 50
        assert s.density_R == 40 / 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemShape(0, 1, 1, 0, 0)
        with pytest.raises(ValueError):
            ProblemShape(1, 1, 1, -1, 0)


class TestTimeProxy:
    def test_requires_machine(self):
        with pytest.raises(ValueError):
            model().estimated_seconds(model().co(), accum_updates=100)

    def test_oversized_workspace_penalized(self):
        m = model(L=10_000, R=10_000, C=100, nnz_L=10_000, nnz_R=10_000,
                  machine=DESKTOP)
        untiled = m.estimated_seconds(m.co(), accum_updates=1e6)
        tiled = m.estimated_seconds(m.tiled_co(512, 512), accum_updates=1e6)
        # The untiled CO workspace (1e10 cells) misses cache on every
        # update; with equal update counts the tiled variant must win
        # unless its query/volume overhead dominates - here it does not.
        assert untiled > tiled
