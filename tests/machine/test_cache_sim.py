"""Unit tests for the cache simulator."""

import numpy as np
import pytest

from repro.machine.cache_sim import CacheSim


class TestBasics:
    def test_cold_misses(self):
        c = CacheSim(4096, line_bytes=64, ways=4)
        c.access(np.arange(0, 640, 64))
        assert c.misses == 10
        assert c.hits == 0

    def test_repeat_hits(self):
        c = CacheSim(4096, line_bytes=64, ways=4)
        c.access(np.array([0, 0, 0, 8, 16]))  # same line
        assert c.misses == 1
        assert c.hits == 4

    def test_spatial_locality_within_line(self):
        c = CacheSim(4096)
        c.access(np.arange(64))  # one line of byte addresses
        assert c.misses == 1

    def test_capacity_eviction(self):
        # Working set twice the cache size, streamed twice: all misses.
        c = CacheSim(1024, line_bytes=64, ways=16)  # fully assoc., 16 lines
        trace = np.arange(0, 2048, 64)
        c.access(trace)
        c.access(trace)
        assert c.hits == 0
        assert c.misses == 64

    def test_fit_in_cache_second_pass_hits(self):
        c = CacheSim(4096, line_bytes=64, ways=64)  # fully associative
        trace = np.arange(0, 2048, 64)  # 32 lines, cache holds 64
        c.access(trace)
        c.access(trace)
        assert c.hits == 32
        assert c.misses == 32

    def test_lru_order(self):
        # 2-way set; access lines A, B (same set), then A again, then C
        # (same set): C must evict B, not A.
        c = CacheSim(2 * 64, line_bytes=64, ways=2)  # 1 set, 2 ways
        A, B, C = 0, 64, 128
        c.access(np.array([A, B, A, C, A]))
        # A: miss, B: miss, A: hit, C: miss (evicts B), A: hit
        assert c.hits == 2
        assert c.misses == 3

    def test_miss_rate(self):
        c = CacheSim(4096)
        assert c.miss_rate == 0.0
        c.access(np.array([0]))
        assert c.miss_rate == 1.0

    def test_reset_stats(self):
        c = CacheSim(4096)
        c.access(np.array([0, 0]))
        c.reset_stats()
        assert c.accesses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSim(0)
        with pytest.raises(ValueError):
            CacheSim(64, line_bytes=64, ways=8)  # 1 line < 8 ways


class TestTilingLocalityClaim:
    def test_tiled_updates_beat_untiled(self, rng):
        """Section 5.3's motivation: random updates into a cache-sized
        tile mostly hit; the same updates into a huge workspace miss."""
        cache = 8 * 1024  # 8 KiB cache = 1024 doubles
        tile_cells = 512  # fits
        huge_cells = 1 << 20  # does not

        updates = rng.integers(0, tile_cells, size=4000)
        tiled = CacheSim(cache)
        tiled.access(updates * 8)

        updates_huge = rng.integers(0, huge_cells, size=4000)
        untiled = CacheSim(cache)
        untiled.access(updates_huge * 8)

        assert tiled.miss_rate < 0.2
        assert untiled.miss_rate > 0.8
