"""Unit tests for the machine models — including the paper's published
tile sizes (Section 6.2)."""

import pytest

from repro.machine.specs import DESKTOP, MINIATURE, SERVER, MachineSpec


class TestPaperPlatforms:
    def test_desktop_parameters(self):
        assert DESKTOP.n_cores == 8
        assert DESKTOP.l3_bytes == 16 * 1024 * 1024
        assert DESKTOP.l2_bytes_per_core == 512 * 1024

    def test_server_parameters(self):
        assert SERVER.n_cores == 64
        assert SERVER.l3_bytes == 256 * 1024 * 1024

    def test_desktop_dense_tile_is_512(self):
        # Section 6.2: sqrt(2 MiB / 8 B) = 512 exactly.
        assert DESKTOP.dense_tile_size() == 512

    def test_server_dense_tile_rounds_724_down_to_512(self):
        # Section 6.2: sqrt(4 MiB / 8 B) = 724, rounded down to 512.
        assert SERVER.dense_tile_size() == 512

    def test_l3_share(self):
        assert DESKTOP.l3_bytes_per_core == 2 * 1024 * 1024
        assert SERVER.l3_bytes_per_core == 4 * 1024 * 1024


class TestSparseTileSize:
    def test_inverse_sqrt_density(self):
        t_dense = DESKTOP.sparse_tile_size(1e-2)
        t_sparser = DESKTOP.sparse_tile_size(1e-4)
        # 100x sparser -> ~10x larger tile (then power-of-two rounding).
        assert t_sparser >= 8 * t_dense

    def test_power_of_two(self):
        t = DESKTOP.sparse_tile_size(3.7e-5)
        assert t & (t - 1) == 0

    def test_rounding_up(self):
        import math

        density = 1e-3
        exact = math.sqrt(DESKTOP.l3_bytes / (17.7 * density * DESKTOP.n_cores))
        assert DESKTOP.sparse_tile_size(density) >= exact

    def test_zero_density_huge(self):
        assert DESKTOP.sparse_tile_size(0.0) >= 1 << 60

    def test_paper_nips_tile_magnitudes(self):
        # Section 6.3 reports million-scale sparse tiles for the NIPS
        # contractions (1048576 and 262144 on the desktop).  The formula
        # at the paper's NIPS parameters (p = 1.83e-6, C = 14036 and
        # C = 14036 * 17) lands within one power of two of those.
        import math

        p = 1.83e-6
        delta_2 = -math.expm1(14036 * math.log1p(-p * p))
        t2 = DESKTOP.sparse_tile_size(delta_2)
        assert 1 << 20 <= t2 <= 1 << 22
        delta_23 = -math.expm1(14036 * 17 * math.log1p(-p * p))
        t23 = DESKTOP.sparse_tile_size(delta_23)
        assert 1 << 18 <= t23 <= 1 << 20


class TestValidation:
    def test_bad_cores(self):
        with pytest.raises(ValueError):
            MachineSpec("x", n_cores=0, l3_bytes=1024)

    def test_bad_cache(self):
        with pytest.raises(ValueError):
            MachineSpec("x", n_cores=1, l3_bytes=0)

    def test_miniature_sane(self):
        t = MINIATURE.dense_tile_size()
        assert 1 <= t <= MINIATURE.l3_words
