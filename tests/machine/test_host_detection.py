"""Unit tests for current-host machine detection."""

from repro.machine.specs import DESKTOP, MachineSpec, from_current_host


class TestFromCurrentHost:
    def test_produces_valid_spec(self):
        spec = from_current_host()
        assert isinstance(spec, MachineSpec)
        assert spec.n_cores >= 1
        assert spec.l3_bytes > 0
        assert spec.dense_tile_size() >= 1

    def test_fallback_used_when_sysfs_missing(self, monkeypatch):
        import os

        def no_listdir(path):
            raise OSError("no sysfs")

        monkeypatch.setattr(os, "listdir", no_listdir)
        spec = from_current_host(fallback=DESKTOP)
        assert spec is DESKTOP

    def test_default_fallback_scales_with_cores(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "listdir", lambda p: (_ for _ in ()).throw(OSError()))
        spec = from_current_host()
        assert spec.l3_bytes == 2 * 1024 * 1024 * spec.n_cores

    def test_usable_for_planning(self):
        from repro.core.model import choose_plan
        from repro.core.plan import ContractionSpec

        spec = ContractionSpec((64, 32), (32, 48), [(1, 0)])
        plan = choose_plan(spec, 500, 500, from_current_host())
        assert plan.accumulator in ("dense", "sparse")
