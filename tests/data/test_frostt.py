"""Unit tests for the FROSTT-shaped generators (paper Table 2)."""

import pytest

from repro.data.frostt import FROSTT_SPECS, generate_frostt, scaled_shape


class TestSpecs:
    def test_table2_verbatim(self):
        # The paper's Table 2 rows.
        assert FROSTT_SPECS["nips"].shape == (2482, 2862, 14036, 17)
        assert FROSTT_SPECS["nips"].nnz == 3_101_609
        assert FROSTT_SPECS["chicago"].shape == (6186, 24, 77, 32)
        assert FROSTT_SPECS["chicago"].nnz == 5_330_673
        assert FROSTT_SPECS["vast"].shape == (165_427, 11_374, 2, 100, 89)
        assert FROSTT_SPECS["vast"].nnz == 26_021_945
        assert FROSTT_SPECS["uber"].shape == (183, 24, 1140, 1717)
        assert FROSTT_SPECS["uber"].nnz == 3_309_490

    def test_densities_match_table3(self):
        # Table 3's p_L column is the tensor density (self-contraction):
        # chicago 1.46%, uber 0.04%, nips 1.83e-4%.
        assert FROSTT_SPECS["chicago"].density == pytest.approx(0.0146, rel=0.01)
        assert FROSTT_SPECS["uber"].density == pytest.approx(3.85e-4, rel=0.02)
        assert FROSTT_SPECS["nips"].density == pytest.approx(1.83e-6, rel=0.02)


class TestScaledShape:
    def test_small_modes_preserved(self):
        spec = FROSTT_SPECS["chicago"]
        shape = scaled_shape(spec, 0.1)
        assert shape[1] == 24  # hours mode kept
        assert shape[3] == 32
        assert shape[0] == round(6186 * 0.1)

    def test_scale_one_identity_for_large_modes(self):
        spec = FROSTT_SPECS["uber"]
        assert scaled_shape(spec, 1.0) == spec.shape

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_shape(FROSTT_SPECS["uber"], 0.0)
        with pytest.raises(ValueError):
            scaled_shape(FROSTT_SPECS["uber"], 1.5)


class TestGeneration:
    def test_density_preserved_by_default(self):
        t = generate_frostt("chicago", scale=0.05, seed=1)
        assert t.density == pytest.approx(FROSTT_SPECS["chicago"].density, rel=0.05)

    def test_nnz_target(self):
        t = generate_frostt("vast", scale=0.05, seed=1, nnz_target=5000)
        assert t.nnz == 5000

    def test_density_override(self):
        t = generate_frostt("uber", scale=0.1, seed=1, density_override=0.01)
        assert t.density == pytest.approx(0.01, rel=0.05)

    def test_conflicting_overrides(self):
        with pytest.raises(ValueError):
            generate_frostt("uber", nnz_target=10, density_override=0.1)

    def test_unknown_tensor(self):
        with pytest.raises(KeyError):
            generate_frostt("amazon")

    def test_deterministic(self):
        a = generate_frostt("uber", scale=0.1, seed=3)
        b = generate_frostt("uber", scale=0.1, seed=3)
        assert a.allclose(b)

    def test_mode_count_preserved(self):
        for name, spec in FROSTT_SPECS.items():
            t = generate_frostt(name, scale=0.02, seed=1, nnz_target=100)
            assert t.ndim == len(spec.shape)
