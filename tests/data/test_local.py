"""Unit tests for the real-FROSTT local loader."""

import gzip

import pytest

from repro.data.frostt import FROSTT_SPECS
from repro.data.local import ENV_VAR, find_tns_file, frostt_data_dir, load_frostt
from repro.data.random_tensors import random_coo
from repro.errors import FormatError
from repro.tensors.io import write_tns


class TestDiscovery:
    def test_unset_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert frostt_data_dir() is None
        assert find_tns_file("uber") is None

    def test_env_pointing_nowhere(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "missing"))
        assert frostt_data_dir() is None

    def test_explicit_directory(self, tmp_path):
        (tmp_path / "uber.tns").write_text("1 1 1 1 1.0\n")
        assert find_tns_file("uber", tmp_path) is not None

    def test_alias_names(self, tmp_path):
        (tmp_path / "chicago-crime.tns").write_text("1 1 1 1 1.0\n")
        assert find_tns_file("chicago", tmp_path) is not None

    def test_gz_suffix(self, tmp_path):
        with gzip.open(tmp_path / "uber.tns.gz", "wt") as fh:
            fh.write("1 1 1 1 1.0\n")
        path = find_tns_file("uber", tmp_path)
        assert path is not None and path.suffix == ".gz"

    def test_unknown_tensor(self, tmp_path):
        with pytest.raises(KeyError):
            find_tns_file("amazon", tmp_path)


class TestLoading:
    def test_synthetic_fallback(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        tensor, is_real = load_frostt("uber", scale=0.05)
        assert not is_real
        assert tensor.ndim == 4

    def test_strict_without_data(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, str(tmp_path))
        with pytest.raises(FileNotFoundError):
            load_frostt("uber", strict=True)

    def test_metadata_mismatch_rejected(self, tmp_path):
        # Wrong nnz count vs Table 2.
        t = random_coo((200, 24, 1200, 1800), nnz=100, seed=2)
        write_tns(t, tmp_path / "uber.tns")
        with pytest.raises(FormatError):
            load_frostt("uber", directory=tmp_path)

    def test_wrong_arity_rejected(self, tmp_path):
        t = random_coo((50, 60), nnz=100, seed=3)
        write_tns(t, tmp_path / "uber.tns")
        with pytest.raises(FormatError):
            load_frostt("uber", directory=tmp_path)

    def test_valid_real_file_loaded(self, tmp_path, monkeypatch):
        """A file matching the published metadata loads as real data
        (using a shrunken spec so the test stays small)."""
        from repro.data.frostt import FrosttSpec

        small_spec = FrosttSpec("uber", (20, 24, 30, 40), 500)
        monkeypatch.setitem(FROSTT_SPECS, "uber", small_spec)
        t = random_coo(small_spec.shape, nnz=small_spec.nnz, seed=5)
        write_tns(t, tmp_path / "uber.tns")
        loaded, is_real = load_frostt("uber", directory=tmp_path)
        assert is_real
        assert loaded.allclose(t)

    def test_gz_roundtrip(self, tmp_path, monkeypatch):
        spec = FROSTT_SPECS["uber"]
        t = random_coo(spec.shape, nnz=spec.nnz // 10_000, seed=4)
        # Build a file with exactly the published nnz is impractical in a
        # unit test; instead verify the gz reader path with strict
        # metadata disabled by monkeypatching the spec check boundary.
        with gzip.open(tmp_path / "uber.tns.gz", "wt") as fh:
            from io import StringIO

            buf = StringIO()
            write_tns(t, buf)
            fh.write(buf.getvalue())
        # Expect the nnz-mismatch error — proving the gz file was parsed.
        with pytest.raises(FormatError, match="nonzeros"):
            load_frostt("uber", directory=tmp_path)
