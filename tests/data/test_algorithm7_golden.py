"""Golden regression tests for Algorithm 7's published plan decisions.

``algorithm7_plans.json`` freezes, for every registry case and both
paper machines, the planner's decision (accumulator kind, tile sizes)
and the linearized problem parameters it saw.  The paper's Table 3 is a
function of exactly these decisions, so any change that silently alters
them — a cost-model calibration leaking into planning, a tile-size
formula tweak, a generator drift — fails here loudly instead of
corrupting published comparisons.

Deliberate planner changes regenerate the file::

    PYTHONPATH=src python tests/data/test_algorithm7_golden.py --regen
"""

import json
import os

import pytest

from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.data.registry import all_cases
from repro.machine.specs import DESKTOP, SERVER

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "algorithm7_plans.json")
MACHINES = {"desktop": DESKTOP, "server": SERVER}


def compute_entry(case_name: str) -> dict:
    """The planner's current decision for one registry case."""
    case = all_cases()[case_name]
    left, right, pairs = case.load()
    spec = ContractionSpec(left.shape, right.shape, pairs)
    left_op = spec.linearize_left(left).sum_duplicates()
    right_op = spec.linearize_right(right).sum_duplicates()
    entry = {
        "problem": {
            "L": spec.L, "R": spec.R, "C": spec.C,
            "nnz_l": left_op.nnz, "nnz_r": right_op.nnz,
        },
    }
    for label, machine in MACHINES.items():
        plan = choose_plan(spec, left_op.nnz, right_op.nnz, machine)
        entry[label] = {
            "accumulator": plan.accumulator,
            "tile_l": plan.tile_l,
            "tile_r": plan.tile_r,
        }
    return entry


def load_golden() -> dict:
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden():
    return load_golden()


def test_golden_covers_every_registry_case(golden):
    assert sorted(golden) == sorted(all_cases())


@pytest.mark.parametrize("case_name", sorted(all_cases()))
def test_planner_reproduces_golden_decision(case_name, golden):
    entry = compute_entry(case_name)
    frozen = golden[case_name]
    assert entry["problem"] == frozen["problem"], (
        f"{case_name}: generated problem parameters drifted — the golden "
        "decisions no longer describe the same workload"
    )
    for label in MACHINES:
        assert entry[label] == frozen[label], (
            f"{case_name} on {label}: Algorithm 7's decision changed. "
            "If intentional, regenerate with "
            "`PYTHONPATH=src python tests/data/test_algorithm7_golden.py --regen` "
            "and explain the plan change in the commit."
        )


def test_golden_agrees_with_paper_model_column(golden):
    """The frozen desktop decisions match Table 3's D/S column (known
    exception: none — all 16 agree at the reproduction scale)."""
    for name, case in all_cases().items():
        published = case.paper.get("model")
        if not published:
            continue
        expected = "dense" if published == "D" else "sparse"
        assert golden[name]["desktop"]["accumulator"] == expected, name


def main() -> None:  # pragma: no cover - regeneration utility
    import sys

    if "--regen" not in sys.argv:
        print(__doc__)
        return
    payload = {name: compute_entry(name) for name in sorted(all_cases())}
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(payload)} cases)")


if __name__ == "__main__":  # pragma: no cover
    main()
