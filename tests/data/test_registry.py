"""Unit tests for the benchmark registry."""

import pytest

from repro.data.registry import FROSTT_CASES, QUANTUM_CASES, all_cases, get_case


class TestRegistry:
    def test_sixteen_cases(self):
        # Table 3 has 16 rows: 10 FROSTT + 6 quantum chemistry.
        assert len(FROSTT_CASES) == 10
        assert len(QUANTUM_CASES) == 6
        assert len(all_cases()) == 16

    def test_paper_metadata_complete(self):
        for name, case in all_cases().items():
            assert case.paper["model"] in ("D", "S"), name
            assert "p_l_pct" in case.paper
            assert "time_dense_s" in case.paper

    def test_frostt_original_parameters(self):
        orig = get_case("chic_0").paper["original"]
        assert orig["C"] == 6186
        assert orig["L"] == 24 * 77 * 32
        assert orig["nnz_L"] == 5_330_673

    def test_nips2_dnf_marker(self):
        assert get_case("NIPS_2").paper["time_dense_s"] == float("inf")

    def test_get_case_unknown(self):
        with pytest.raises(KeyError):
            get_case("chic_9")

    def test_case_loads_self_contraction(self):
        left, right, pairs = get_case("chic_01").load()
        assert left is right
        assert pairs == [(0, 0), (1, 1)]

    def test_case_loads_quantum(self):
        left, right, pairs = get_case("C-vvoo").load()
        assert pairs == [(2, 2)]
        assert left.ndim == right.ndim == 3

    def test_loaders_deterministic(self):
        a1, _, _ = get_case("uber_02").load()
        a2, _, _ = get_case("uber_02").load()
        assert a1.allclose(a2)

    def test_workloads_measurable(self):
        """Every case must be big enough to produce a measurable kernel
        run (thousands of nonzeros), per the DESIGN.md scaling rules."""
        for name, case in all_cases().items():
            left, _, _ = case.load()
            assert left.nnz >= 400, name
