"""Unit tests for the DLPNO quantum-chemistry generators."""

import numpy as np
import pytest

from repro.data.quantum import (
    DLPNO_CONTRACTIONS,
    MOLECULES,
    generate_dlpno_operands,
    generate_te_tensor,
)
from repro.errors import ShapeError


class TestTeTensors:
    @pytest.mark.parametrize("kind", ["ov", "vv", "oo"])
    @pytest.mark.parametrize("mol", ["guanine", "caffeine"])
    def test_shapes(self, kind, mol):
        spec = MOLECULES[mol]
        t = generate_te_tensor(kind, spec, seed=1)
        dims = {"o": spec.n_occ, "v": spec.n_virt}
        assert t.shape == (dims[kind[0]], dims[kind[1]], spec.n_aux)

    @pytest.mark.parametrize(
        "mol,kind,attr",
        [
            ("guanine", "ov", "density_ov"),
            ("guanine", "vv", "density_vv"),
            ("caffeine", "ov", "density_ov"),
            ("caffeine", "vv", "density_vv"),
            ("caffeine", "oo", "density_oo"),
        ],
    )
    def test_density_near_target(self, mol, kind, attr):
        """Generated densities must land near the paper's Table 3
        densities (window quantization allows ~40% slack)."""
        spec = MOLECULES[mol]
        t = generate_te_tensor(kind, spec, seed=2)
        target = getattr(spec, attr)
        assert t.density == pytest.approx(target, rel=0.4)

    def test_domain_locality(self):
        """DLPNO structure: each occupied orbital's virtual domain is a
        narrow window, not the full virtual space."""
        spec = MOLECULES["guanine"]
        t = generate_te_tensor("ov", spec, seed=3)
        for i in np.unique(t.coords[0])[:5]:
            mus = t.coords[1][t.coords[0] == i]
            assert mus.max() - mus.min() < spec.n_virt // 2

    def test_centers_move_with_orbital(self):
        spec = MOLECULES["guanine"]
        t = generate_te_tensor("ov", spec, seed=4)
        first = t.coords[1][t.coords[0] == 0].mean()
        last = t.coords[1][t.coords[0] == spec.n_occ - 1].mean()
        assert last > first

    def test_bad_kind(self):
        with pytest.raises(ShapeError):
            generate_te_tensor("vx", MOLECULES["guanine"])

    def test_deterministic(self):
        a = generate_te_tensor("vv", MOLECULES["caffeine"], seed=5)
        b = generate_te_tensor("vv", MOLECULES["caffeine"], seed=5)
        assert a.allclose(b)


class TestOperands:
    @pytest.mark.parametrize("contraction", sorted(DLPNO_CONTRACTIONS))
    @pytest.mark.parametrize("mol", sorted(MOLECULES))
    def test_contractible(self, mol, contraction):
        left, right, pairs = generate_dlpno_operands(mol, contraction, seed=1)
        assert pairs == [(2, 2)]
        assert left.shape[2] == right.shape[2]  # shared auxiliary mode

    def test_ovov_operands_differ(self):
        # ovov contracts TE_ov with an independently seeded TE_ov.
        left, right, _ = generate_dlpno_operands("caffeine", "ovov", seed=1)
        assert left.shape == right.shape
        assert not left.allclose(right)

    def test_unknown_molecule(self):
        with pytest.raises(KeyError):
            generate_dlpno_operands("benzene", "ovov")

    def test_unknown_contraction(self):
        with pytest.raises(KeyError):
            generate_dlpno_operands("caffeine", "oooo")
