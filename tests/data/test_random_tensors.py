"""Unit tests for the random tensor generators."""

import numpy as np
import pytest

from repro.data.random_tensors import clustered_coo, random_coo, random_operand_pair
from repro.errors import ShapeError


class TestRandomCoo:
    def test_exact_nnz(self):
        t = random_coo((20, 20), nnz=50, seed=1)
        assert t.nnz == 50
        assert t.sum_duplicates().nnz == 50  # coordinates are distinct

    def test_deterministic(self):
        a = random_coo((10, 10, 10), nnz=100, seed=7)
        b = random_coo((10, 10, 10), nnz=100, seed=7)
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_output(self):
        a = random_coo((10, 10, 10), nnz=100, seed=7)
        b = random_coo((10, 10, 10), nnz=100, seed=8)
        assert not np.array_equal(a.coords, b.coords)

    def test_too_many_nonzeros(self):
        with pytest.raises(ShapeError):
            random_coo((3, 3), nnz=10, seed=1)

    def test_full_density(self):
        t = random_coo((4, 4), nnz=16, seed=2)
        assert t.nnz == 16
        assert (t.to_dense() != 0).all()

    def test_sparse_regime_sampling(self):
        # Exercise the oversample-and-dedupe path (cells >> nnz).
        t = random_coo((1 << 12, 1 << 12), nnz=1000, seed=3)
        assert t.nnz == 1000
        assert t.sum_duplicates().nnz == 1000

    def test_normal_values(self):
        t = random_coo((30, 30), nnz=200, seed=4, value_dist="normal")
        assert (t.values < 0).any()

    def test_uniform_values_nonzero(self):
        t = random_coo((30, 30), nnz=200, seed=5)
        assert (t.values > 0).all()

    def test_bad_dist(self):
        with pytest.raises(ValueError):
            random_coo((5, 5), nnz=3, seed=0, value_dist="cauchy")

    def test_coordinates_uniform_ish(self):
        # Mode marginals of a large uniform sample should be flat-ish.
        t = random_coo((16, 1000), nnz=8000, seed=6)
        counts = np.bincount(t.coords[0], minlength=16)
        assert counts.min() > 0.5 * counts.mean()
        assert counts.max() < 1.5 * counts.mean()


class TestClusteredCoo:
    def test_generates(self):
        t = clustered_coo((100, 100), nnz=500, seed=1)
        assert 0 < t.nnz <= 500
        assert t.shape == (100, 100)

    def test_single_cluster_concentrates(self):
        clustered = clustered_coo((1000, 1000), nnz=2000, seed=2, n_clusters=1,
                                  spread=0.01)
        # All points jitter around one center: tiny spread vs the extent.
        assert clustered.coords[0].std() < 50
        assert clustered.coords[1].std() < 50

    def test_occupies_few_rows(self):
        import numpy as np

        uniform = random_coo((1000, 1000), nnz=2000, seed=2)
        clustered = clustered_coo((1000, 1000), nnz=2000, seed=2, n_clusters=3,
                                  spread=0.01)
        assert len(np.unique(clustered.coords[0])) < 0.5 * len(
            np.unique(uniform.coords[0])
        )


class TestOperandPair:
    def test_extents_and_density(self):
        left, right = random_operand_pair(
            50, 40, 30, density_l=0.1, density_r=0.05, seed=1
        )
        assert left.ext_extent == 50 and left.con_extent == 40
        assert right.ext_extent == 30 and right.con_extent == 40
        assert left.nnz == round(0.1 * 50 * 40)
        assert right.nnz == round(0.05 * 40 * 30)

    def test_indices_in_range(self):
        left, right = random_operand_pair(
            50, 40, 30, density_l=0.1, density_r=0.05, seed=2
        )
        assert left.ext.max() < 50 and left.con.max() < 40
        assert right.ext.max() < 30 and right.con.max() < 40

    def test_unique_coordinates(self):
        left, _ = random_operand_pair(20, 20, 20, density_l=0.3, density_r=0.1, seed=3)
        combined = left.ext * 20 + left.con
        assert len(np.unique(combined)) == left.nnz
