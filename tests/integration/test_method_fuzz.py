"""Differential fuzzing across every contraction method.

Hypothesis generates random self-contraction problems (random tensor,
random contracted-mode subset) and all applicable methods must agree
with the dense ground truth — the widest net for cross-kernel
divergence bugs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COOTensor, contract
from repro.errors import PlanError
from repro.tensors.dense import dense_contract

ALL_METHODS = ["fastcc", "sparta", "sparta_improved", "taco", "taco_mm", "ci", "cm", "co"]


@st.composite
def self_contraction_problems(draw):
    ndim = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(1, 5)) for _ in range(ndim))
    cells = int(np.prod(shape))
    nnz = draw(st.integers(0, min(18, cells)))
    coords = np.array(
        [[draw(st.integers(0, e - 1)) for _ in range(nnz)] for e in shape],
        dtype=np.int64,
    ).reshape(ndim, nnz)
    values = np.array(
        [draw(st.floats(-6, 6, allow_nan=False)) for _ in range(nnz)]
    )
    tensor = COOTensor(coords, values, shape)
    n_contracted = draw(st.integers(1, ndim - 1))
    modes = draw(
        st.permutations(range(ndim)).map(lambda p: sorted(p[:n_contracted]))
    )
    return tensor, [(m, m) for m in modes]


@settings(max_examples=30, deadline=None)
@given(problem=self_contraction_problems())
def test_every_method_matches_dense(problem):
    tensor, pairs = problem
    expected = dense_contract(tensor, tensor, pairs)
    for method in ALL_METHODS:
        try:
            out = contract(tensor, tensor, pairs, method=method)
        except PlanError:
            # taco_mm rejects contractions with no external modes.
            assert method == "taco_mm"
            continue
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-10,
            err_msg=f"method={method}, pairs={pairs}, shape={tensor.shape}",
        )
