"""Differential fuzzing across every contraction method and the
serving layer.

Hypothesis generates random self-contraction problems (random tensor,
random contracted-mode subset) and all applicable methods must agree
with the dense ground truth — the widest net for cross-kernel
divergence bugs.  The serve mode pushes the same problems through a
live ContractionService (every admission policy, degradation on and
off) and requires the served results *bit-identical* to the direct
path that produced the same plan.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COOTensor, contract
from repro.errors import PlanError
from repro.machine.specs import DESKTOP
from repro.serve import (
    ContractionService,
    Request,
    ServiceConfig,
    ShardedConfig,
    ShardRouter,
)
from repro.tensors.dense import dense_contract

ALL_METHODS = ["fastcc", "sparta", "sparta_improved", "taco", "taco_mm", "ci", "cm", "co"]


@st.composite
def self_contraction_problems(draw):
    ndim = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(1, 5)) for _ in range(ndim))
    cells = int(np.prod(shape))
    nnz = draw(st.integers(0, min(18, cells)))
    coords = np.array(
        [[draw(st.integers(0, e - 1)) for _ in range(nnz)] for e in shape],
        dtype=np.int64,
    ).reshape(ndim, nnz)
    values = np.array(
        [draw(st.floats(-6, 6, allow_nan=False)) for _ in range(nnz)]
    )
    tensor = COOTensor(coords, values, shape)
    n_contracted = draw(st.integers(1, ndim - 1))
    modes = draw(
        st.permutations(range(ndim)).map(lambda p: sorted(p[:n_contracted]))
    )
    return tensor, [(m, m) for m in modes]


@settings(max_examples=10, deadline=None)
@given(problem=self_contraction_problems())
def test_serve_differential_bitwise(problem):
    """Served results must be bit-identical to the direct call that
    runs the same plan: the service adds scheduling, not arithmetic.

    Non-degraded requests compare against plain ``contract()``; forced
    cheap-path degradation compares against
    ``contract(accumulator="sparse")`` (a different plan changes float
    accumulation order, so each served path gets the reference that
    shares its plan parameters).
    """
    tensor, pairs = problem
    expected_full = contract(tensor, tensor, pairs)
    expected_sparse = contract(tensor, tensor, pairs, accumulator="sparse")
    for policy in ("reject", "shed_oldest", "block"):
        for force_degraded in (False, True):
            config = ServiceConfig(
                queue_capacity=8, policy=policy, n_workers=1,
                force_degraded=force_degraded,
            )
            with ContractionService(machine=DESKTOP, config=config) as svc:
                response = svc.call(
                    Request.pairwise(tensor, tensor, pairs), timeout=60.0
                )
            assert response.ok, (policy, force_degraded, response.detail)
            expected = expected_sparse if force_degraded else expected_full
            if force_degraded:
                assert response.degrade_rung == "cheap-path"
            np.testing.assert_array_equal(
                response.result.coords, expected.coords,
                err_msg=f"policy={policy}, degraded={force_degraded}",
            )
            np.testing.assert_array_equal(
                response.result.values, expected.values,
                err_msg=f"policy={policy}, degraded={force_degraded}",
            )


@pytest.fixture(scope="module")
def sharded_router():
    """One 2-shard router shared by the whole fuzz module (spawning
    processes per example would dominate the run)."""
    config = ShardedConfig(
        n_shards=2,
        service=ServiceConfig(queue_capacity=8, policy="block", n_workers=1),
    )
    with ShardRouter(machine=DESKTOP, config=config) as router:
        yield router


@settings(max_examples=5, deadline=None)
@given(problem=self_contraction_problems())
def test_sharded_serve_differential_bitwise(sharded_router, problem):
    """Process sharding must not change a single bit either: the shard
    worker runs the same runtime the direct call does, and results only
    cross the IPC boundary by pickling."""
    tensor, pairs = problem
    expected = contract(tensor, tensor, pairs)
    response = sharded_router.call(
        Request.pairwise(tensor, tensor, pairs), timeout=60.0
    )
    assert response.ok, response.detail
    np.testing.assert_array_equal(response.result.coords, expected.coords)
    np.testing.assert_array_equal(response.result.values, expected.values)


@settings(max_examples=30, deadline=None)
@given(problem=self_contraction_problems())
def test_every_method_matches_dense(problem):
    tensor, pairs = problem
    expected = dense_contract(tensor, tensor, pairs)
    for method in ALL_METHODS:
        try:
            out = contract(tensor, tensor, pairs, method=method)
        except PlanError:
            # taco_mm rejects contractions with no external modes.
            assert method == "taco_mm"
            continue
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-10,
            err_msg=f"method={method}, pairs={pairs}, shape={tensor.shape}",
        )


@st.composite
def network_problems(draw):
    """Random chain networks exercising every pass annotation.

    Half the draws duplicate the chain into twin branches (CSE fires,
    including digest-guard rejections when contents differ), and
    operands are occasionally emptied (dead-step elimination fires).
    """
    n = draw(st.integers(3, 6))
    ops = []
    for k in range(3):
        nnz = draw(st.integers(0, 2 * n))
        coords = np.array(
            [[draw(st.integers(0, n - 1)) for _ in range(nnz)]
             for _ in range(2)],
            dtype=np.int64,
        ).reshape(2, nnz)
        values = np.array(
            [draw(st.floats(-4, 4, allow_nan=False)) for _ in range(nnz)]
        )
        ops.append(COOTensor(coords, values, (n, n)))
    if draw(st.booleans()):
        # twin branches; share or fork the second branch's operands
        share = draw(st.booleans())
        branch = ops[:2] if share else [ops[1], ops[2]]
        return "ij,jk,lm,mn->il", [ops[0], ops[1], *branch]
    return "ab,bc,cd->ad", ops


@settings(max_examples=25, deadline=None)
@given(problem=network_problems())
def test_pass_pipeline_differential_bitwise(problem):
    """Optimized plans must be bit-identical to unoptimized ones on
    every detected backend: passes only skip work the runtime guards
    prove redundant, never change arithmetic."""
    from repro.backends import backend_status
    from repro.network import NetworkExecutor

    subscripts, operands = problem
    backends = [
        name for name, (ok, _) in sorted(backend_status().items()) if ok
    ]
    for backend in backends:
        base = NetworkExecutor(machine=DESKTOP, passes=None)
        opt = NetworkExecutor(machine=DESKTOP)
        ref = base.contract(subscripts, *operands, backend=backend)
        out = opt.contract(subscripts, *operands, backend=backend)
        np.testing.assert_array_equal(
            ref.to_dense(), out.to_dense(),
            err_msg=f"backend={backend}, subscripts={subscripts}",
        )
