"""Concurrency stress tests.

The tile-pair tasks share nothing but the read-only tables, per-worker
accumulators (thread-local) and the counters; these tests hammer the
threaded paths to catch state leakage between workers, accumulator
reuse bugs, and nondeterminism in the *mathematical* result (execution
order may differ; the tensor must not).
"""

import numpy as np
import pytest

from repro import contract
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import tiled_co_contract
from repro.data.random_tensors import random_operand_pair, random_coo
from repro.machine.specs import DESKTOP

from tests.conftest import reference_product, triples_to_dense


class TestThreadedKernel:
    @pytest.mark.parametrize("trial", range(5))
    def test_repeated_threaded_runs_stable(self, trial):
        """Five back-to-back 4-worker runs, different seeds: each must
        match the dense reference exactly."""
        left, right = random_operand_pair(
            60, 40, 60, density_l=0.08, density_r=0.08, seed=100 + trial
        )
        expected = reference_product(left, right)
        spec = ContractionSpec((60, 40), (40, 60), [(1, 0)])
        plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=8)
        l, r, v, _ = tiled_co_contract(left, right, plan, n_workers=4)
        got = triples_to_dense(l, r, v, 60, 60)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_many_tiny_tasks(self):
        """Tile size 1: hundreds of minuscule tasks churn the queue and
        the per-worker accumulator reuse path."""
        left, right = random_operand_pair(
            30, 20, 30, density_l=0.15, density_r=0.15, seed=9
        )
        expected = reference_product(left, right)
        spec = ContractionSpec((30, 20), (20, 30), [(1, 0)])
        plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=1)
        l, r, v, stats = tiled_co_contract(left, right, plan, n_workers=4)
        assert stats.num_tasks > 100
        got = triples_to_dense(l, r, v, 30, 30)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_workers_exceed_tasks(self):
        left, right = random_operand_pair(
            10, 8, 10, density_l=0.2, density_r=0.2, seed=10
        )
        spec = ContractionSpec((10, 8), (8, 10), [(1, 0)])
        plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=16)
        l, r, v, stats = tiled_co_contract(left, right, plan, n_workers=8)
        assert stats.num_tasks <= 1
        got = triples_to_dense(l, r, v, 10, 10)
        np.testing.assert_allclose(got, reference_product(left, right))

    def test_accumulator_reuse_across_tasks_is_clean(self):
        """A worker's accumulator is reset between tasks; a leak would
        bleed values from one output tile into another.  Construct a
        case where every tile gets the same update pattern so leakage
        would double values."""
        # Identity-like operands: L = R = I_16 scaled.
        eye = np.arange(16, dtype=np.int64)
        from repro.core.plan import LinearizedOperand

        left = LinearizedOperand(eye, eye, np.full(16, 2.0), 16, 16)
        right = LinearizedOperand(eye, eye, np.full(16, 3.0), 16, 16)
        spec = ContractionSpec((16, 16), (16, 16), [(1, 0)])
        plan = choose_plan(spec, 16, 16, DESKTOP, tile_size=4)
        l, r, v, _ = tiled_co_contract(left, right, plan, n_workers=3)
        assert np.allclose(v, 6.0)
        assert l.shape[0] == 16

    def test_threaded_public_api_deterministic_output(self):
        a = random_coo((40, 25, 10), nnz=400, seed=11)
        outs = [
            contract(a, a, [(2, 2)], n_workers=w, tile_size=8) for w in (1, 2, 4)
        ]
        for other in outs[1:]:
            # canonical=True sorts: bitwise-identical coordinate arrays.
            np.testing.assert_array_equal(outs[0].coords, other.coords)
            np.testing.assert_allclose(outs[0].values, other.values, rtol=1e-12)


class TestThreadedConstruction:
    def test_concurrent_pair_builds_stress(self):
        from repro.core.tiled_co import build_tiled_tables_pair

        for trial in range(5):
            left, right = random_operand_pair(
                64, 32, 64, density_l=0.1, density_r=0.1, seed=200 + trial
            )
            hl, hr = build_tiled_tables_pair(left, right, 8, 8, n_workers=4)
            assert sum(t.nnz for t in hl.tables if t) == left.nnz
            assert sum(t.nnz for t in hr.tables if t) == right.nnz


class TestFailurePropagation:
    def test_worker_exception_surfaces(self, monkeypatch):
        """A fault inside one tile task must surface to the caller (not
        hang the queue or get swallowed)."""
        from repro.core import accumulators

        left, right = random_operand_pair(
            40, 20, 40, density_l=0.1, density_r=0.1, seed=31
        )
        spec = ContractionSpec((40, 20), (20, 40), [(1, 0)])
        plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=8)

        original = accumulators.DenseTileAccumulator.update_batch
        calls = {"n": 0}

        def flaky(self, positions, values):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("injected accumulator fault")
            return original(self, positions, values)

        monkeypatch.setattr(
            accumulators.DenseTileAccumulator, "update_batch", flaky
        )
        with pytest.raises(RuntimeError, match="injected"):
            tiled_co_contract(left, right, plan, n_workers=2)

    def test_construction_fault_surfaces(self, monkeypatch):
        from repro.core import tiled_co as kernel_mod

        left, right = random_operand_pair(
            40, 20, 40, density_l=0.1, density_r=0.1, seed=32
        )

        def broken(*args, **kwargs):
            raise ValueError("injected table fault")

        monkeypatch.setattr(kernel_mod, "build_tiled_tables", broken)
        from repro.core.tiled_co import build_tiled_tables_pair

        with pytest.raises(ValueError, match="injected"):
            build_tiled_tables_pair(left, right, 8, 8, n_workers=4)
