"""Integration tests: full pipeline against dense einsum across mode
arities, methods, and machine models."""

import numpy as np
import pytest

from repro import COOTensor, contract, self_contract
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP, MINIATURE, SERVER
from repro.tensors.dense import dense_contract, dense_self_contract

METHODS = ["fastcc", "sparta", "taco", "ci", "cm", "co"]

CASES = [
    # (left shape, right shape, pairs) covering orders 2-5 and varying
    # numbers of contraction modes.
    ((8, 9), (9, 7), [(1, 0)]),
    ((9, 8), (7, 9), [(0, 1)]),
    ((5, 6, 7), (7, 4), [(2, 0)]),
    ((5, 6, 7), (6, 7, 3), [(1, 0), (2, 1)]),
    ((4, 5, 6, 3), (3, 6, 8), [(3, 0), (2, 1)]),
    ((3, 4, 2, 5, 3), (5, 3, 6), [(3, 0), (4, 1)]),
    ((6, 5), (5, 6), [(0, 1), (1, 0)]),  # scalar output
]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("case_idx", range(len(CASES)))
def test_method_matches_einsum(method, case_idx):
    a_shape, b_shape, pairs = CASES[case_idx]
    a = random_coo(a_shape, nnz=min(40, a_shape[0] * a_shape[1]), seed=case_idx)
    b = random_coo(b_shape, nnz=min(35, b_shape[0] * b_shape[1]), seed=100 + case_idx)
    out = contract(a, b, pairs, method=method)
    expected = dense_contract(a, b, pairs)
    np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("machine", [DESKTOP, SERVER, MINIATURE])
def test_machine_invariance(machine):
    """The machine model changes the plan, never the result."""
    a = random_coo((40, 30, 20), nnz=300, seed=7)
    b = random_coo((20, 30, 25), nnz=250, seed=8)
    pairs = [(2, 0), (1, 1)]
    out = contract(a, b, pairs, machine=machine)
    np.testing.assert_allclose(
        out.to_dense(), dense_contract(a, b, pairs), rtol=1e-9
    )


class TestDuplicateAndDegenerateInputs:
    def test_heavy_duplicates(self, rng):
        # Many duplicate coordinates: all kernels must fold them first.
        coords = rng.integers(0, 4, size=(2, 200))
        values = rng.standard_normal(200)
        a = COOTensor(coords, values, (4, 4))
        out = contract(a, a, [(1, 0)])
        expected = a.to_dense() @ a.to_dense()
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)

    def test_explicit_zeros(self):
        a = COOTensor([[0, 1], [0, 1]], [0.0, 2.0], (2, 2))
        b = COOTensor([[0, 1], [0, 1]], [3.0, 0.0], (2, 2))
        out = contract(a, b, [(1, 0)])
        np.testing.assert_allclose(out.to_dense(), a.to_dense() @ b.to_dense())

    def test_single_nonzero(self):
        a = COOTensor([[2], [3]], [5.0], (4, 6))
        b = COOTensor([[3], [1]], [2.0], (6, 3))
        out = contract(a, b, [(1, 0)])
        assert out.nnz == 1
        assert out.to_dense()[2, 1] == 10.0

    def test_both_empty(self):
        a = COOTensor.empty((4, 5))
        b = COOTensor.empty((5, 6))
        for method in METHODS:
            out = contract(a, b, [(1, 0)], method=method)
            assert out.nnz == 0

    def test_extent_one_modes(self):
        a = random_coo((1, 7, 1), nnz=5, seed=9)
        b = random_coo((7, 1), nnz=5, seed=10)
        out = contract(a, b, [(1, 0)])
        expected = dense_contract(a, b, [(1, 0)])
        np.testing.assert_allclose(out.to_dense(), expected)

    def test_negative_values(self):
        a = random_coo((10, 10), nnz=40, seed=11, value_dist="normal")
        out = self_contract(a, [1])
        np.testing.assert_allclose(
            out.to_dense(), dense_self_contract(a, [1]), rtol=1e-9
        )


class TestPaperWorkloadShapes:
    """Miniature versions of the paper's contraction shapes, all methods."""

    def test_chicago_style_self_contraction(self):
        t = random_coo((30, 6, 8, 5), nnz=150, seed=12)
        for modes in ([0], [0, 1], [1, 2, 3]):
            fast = self_contract(t, modes)
            np.testing.assert_allclose(
                fast.to_dense(), dense_self_contract(t, modes), rtol=1e-9
            )

    def test_dlpno_style_contraction(self):
        te1 = random_coo((6, 12, 10), nnz=80, seed=13)
        te2 = random_coo((6, 12, 10), nnz=70, seed=14)
        out = contract(te1, te2, [(2, 2)])
        np.testing.assert_allclose(
            out.to_dense(), dense_contract(te1, te2, [(2, 2)]), rtol=1e-9
        )

    def test_methods_agree_on_quantum_case(self):
        from repro.data.quantum import generate_dlpno_operands

        left, right, pairs = generate_dlpno_operands("caffeine", "ovov", seed=2)
        reference = contract(left, right, pairs, method="fastcc")
        sparta = contract(left, right, pairs, method="sparta")
        assert reference.allclose(sparta)

    def test_fastcc_matches_sparta_on_frostt_case(self):
        from repro.data.registry import get_case

        left, right, pairs = get_case("chic_01").load()
        fast = contract(left, right, pairs, method="fastcc")
        sparta = contract(left, right, pairs, method="sparta")
        assert fast.allclose(sparta)
