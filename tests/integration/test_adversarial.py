"""Adversarial-structure and failure-injection tests.

The model assumes uniform random sparsity and the hash tables assume a
decent mixer; these tests feed every kernel the structures that break
those assumptions — single hot slices, diagonals, rank-1 patterns,
poisoned hash functions — and assert that *correctness* never degrades
(performance may).
"""

import numpy as np
import pytest

from repro import COOTensor, contract
from repro.data.random_tensors import random_coo
from repro.tensors.dense import dense_contract

METHODS = ["fastcc", "sparta", "sparta_improved", "taco", "taco_mm", "co"]


def check_all_methods(a, b, pairs):
    expected = dense_contract(a, b, pairs)
    for method in METHODS:
        out = contract(a, b, pairs, method=method)
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-9, atol=1e-12,
            err_msg=f"method {method}",
        )


class TestHotSlices:
    def test_single_dense_contraction_slice(self):
        """All nonzeros share one contraction index: one giant outer
        product, the worst case for workspace collisions."""
        rng = np.random.default_rng(0)
        n = 60
        coords_a = np.vstack([rng.integers(0, 20, n), np.full(n, 7)])
        coords_b = np.vstack([np.full(n, 7), rng.integers(0, 25, n)])
        a = COOTensor(coords_a, rng.random(n), (20, 15)).sum_duplicates()
        b = COOTensor(coords_b, rng.random(n), (15, 25)).sum_duplicates()
        check_all_methods(a, b, [(1, 0)])

    def test_single_hot_row(self):
        """One external index holds almost all nonzeros (power-law-ish
        FROSTT structure)."""
        rng = np.random.default_rng(1)
        n = 80
        rows = np.where(rng.random(n) < 0.9, 3, rng.integers(0, 12, n))
        a = COOTensor(
            np.vstack([rows, rng.integers(0, 30, n)]), rng.random(n), (12, 30)
        ).sum_duplicates()
        b = random_coo((30, 10), nnz=40, seed=2)
        check_all_methods(a, b, [(1, 0)])

    def test_diagonal_operands(self):
        n = 16
        diag = np.arange(n, dtype=np.int64)
        a = COOTensor(np.vstack([diag, diag]), np.arange(1.0, n + 1), (n, n))
        b = COOTensor(np.vstack([diag, diag]), np.full(n, 2.0), (n, n))
        out = contract(a, b, [(1, 0)])
        assert out.nnz == n
        check_all_methods(a, b, [(1, 0)])

    def test_rank_one_pattern(self):
        """a = u v^T style structure: output is fully dense."""
        u = np.arange(8, dtype=np.int64)
        v = np.arange(6, dtype=np.int64)
        iu, iv = np.meshgrid(u, v, indexing="ij")
        a = COOTensor(
            np.vstack([iu.ravel(), iv.ravel()]),
            np.ones(48), (8, 6),
        )
        check_all_methods(a, a, [(1, 1)])


class TestPoisonedHashing:
    def test_constant_hash_end_to_end(self):
        """A constant hash degenerates every table to a linear scan; the
        contraction must still be exact."""
        from repro.hashing import open_addressing

        def bad_hash(keys):
            return np.zeros(np.asarray(keys).shape, dtype=np.uint64)

        a = random_coo((15, 12), nnz=50, seed=3)
        b = random_coo((12, 18), nnz=50, seed=4)
        expected = dense_contract(a, b, [(1, 0)])
        original = open_addressing.splitmix64
        open_addressing.splitmix64 = bad_hash
        try:
            # New tables pick up the poisoned default via the module
            # attribute only if used as default arg at call time — the
            # default was bound at def time, so patch the class default.
            out = contract(a, b, [(1, 0)], method="fastcc")
        finally:
            open_addressing.splitmix64 = original
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)

    def test_identity_hash_tables(self):
        """Sequential keys + identity hash: maximal clustering in the
        probe sequence; correctness must hold."""
        from repro.hashing.hash_functions import identity_hash
        from repro.hashing.open_addressing import OpenAddressingMap

        m = OpenAddressingMap(8, hash_fn=identity_hash)
        keys = np.arange(1000, dtype=np.int64)
        m.upsert_batch(keys, keys.astype(np.float64))
        values, found = m.get_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(values, keys.astype(np.float64))


class TestNumericalBehaviour:
    def test_accumulation_of_many_small_values(self):
        """10^4 contributions of 1e-8 to one output cell must not be
        lost (the accumulators sum in double precision)."""
        n = 10_000
        rng = np.random.default_rng(5)
        coords_a = np.vstack([np.zeros(n, dtype=np.int64),
                              np.arange(n, dtype=np.int64)])
        a = COOTensor(coords_a, np.full(n, 1e-8), (1, n))
        coords_b = np.vstack([np.arange(n, dtype=np.int64),
                              np.zeros(n, dtype=np.int64)])
        b = COOTensor(coords_b, np.ones(n), (n, 1))
        out = contract(a, b, [(1, 0)])
        assert float(out.to_dense()[0, 0]) == pytest.approx(1e-4, rel=1e-9)

    def test_catastrophic_cancellation_kept_explicit(self):
        """+x and -x contributions cancel to an explicit 0.0 output
        entry (the paper's COO output keeps numerical zeros)."""
        a = COOTensor([[0, 0], [0, 1]], [1.0, 1.0], (1, 2))
        b = COOTensor([[0, 1], [0, 0]], [5.0, -5.0], (2, 1))
        out = contract(a, b, [(1, 0)], canonical=False)
        assert out.nnz >= 1
        assert float(out.to_dense()[0, 0]) == 0.0

    def test_huge_magnitude_range(self):
        a = COOTensor([[0, 0], [0, 1]], [1e150, 1e-150], (1, 2))
        b = COOTensor([[0, 1], [0, 0]], [1e150, 1e-150], (2, 1))
        out = contract(a, b, [(1, 0)])
        assert float(out.to_dense()[0, 0]) == pytest.approx(1e300 + 1e-300)


class TestDegenerateShapes:
    def test_vector_vector_outer_free(self):
        a = COOTensor([[0, 2]], [1.0, 3.0], (4,))
        b = COOTensor([[1, 2]], [2.0, 5.0], (4,))
        out = contract(a, b, [(0, 0)])
        assert out.shape == ()
        assert float(out.to_dense()) == 15.0

    def test_one_mode_each_side(self):
        a = random_coo((30,), nnz=10, seed=6)
        b = random_coo((30,), nnz=10, seed=7)
        out = contract(a, b, [(0, 0)])
        expected = float(a.to_dense() @ b.to_dense())
        assert float(out.to_dense()) == pytest.approx(expected)

    def test_extent_one_contraction(self):
        a = random_coo((5, 1), nnz=3, seed=8)
        b = random_coo((1, 6), nnz=4, seed=9)
        check_all_methods(a, b, [(1, 0)])

    def test_wide_flat_tensor(self):
        a = random_coo((1, 500), nnz=50, seed=10)
        b = random_coo((500, 1), nnz=50, seed=11)
        out = contract(a, b, [(1, 0)])
        expected = dense_contract(a, b, [(1, 0)])
        np.testing.assert_allclose(out.to_dense(), expected)
