"""Property-based tests on the full contraction pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COOTensor, contract
from repro.tensors.dense import dense_contract


@st.composite
def coo_tensors(draw, max_modes=3, max_extent=6, max_nnz=25):
    ndim = draw(st.integers(1, max_modes))
    shape = tuple(draw(st.integers(1, max_extent)) for _ in range(ndim))
    cells = int(np.prod(shape))
    nnz = draw(st.integers(0, min(max_nnz, cells)))
    coords = []
    for extent in shape:
        coords.append(draw(st.lists(st.integers(0, extent - 1),
                                    min_size=nnz, max_size=nnz)))
    values = draw(st.lists(
        st.floats(-8, 8, allow_nan=False), min_size=nnz, max_size=nnz))
    arr = np.array(coords, dtype=np.int64).reshape(ndim, nnz)
    return COOTensor(arr, np.array(values), shape)


@st.composite
def contraction_problems(draw):
    """A pair of tensors with at least one matching-extent mode pair."""
    a = draw(coo_tensors())
    # Build b to share the first contracted extent.
    c_extent = a.shape[0]
    b_ndim = draw(st.integers(1, 3))
    b_shape = [c_extent] + [draw(st.integers(1, 6)) for _ in range(b_ndim - 1)]
    cells = int(np.prod(b_shape))
    nnz = draw(st.integers(0, min(20, cells)))
    coords = []
    for extent in b_shape:
        coords.append(draw(st.lists(st.integers(0, extent - 1),
                                    min_size=nnz, max_size=nnz)))
    values = draw(st.lists(
        st.floats(-8, 8, allow_nan=False), min_size=nnz, max_size=nnz))
    b = COOTensor(np.array(coords, dtype=np.int64).reshape(b_ndim, nnz),
                  np.array(values), tuple(b_shape))
    return a, b, [(0, 0)]


@settings(max_examples=40, deadline=None)
@given(problem=contraction_problems())
def test_fastcc_equals_einsum(problem):
    a, b, pairs = problem
    out = contract(a, b, pairs)
    expected = dense_contract(a, b, pairs)
    np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(problem=contraction_problems())
def test_all_methods_agree(problem):
    a, b, pairs = problem
    reference = contract(a, b, pairs, method="fastcc")
    for method in ("sparta", "taco", "co"):
        other = contract(a, b, pairs, method=method)
        assert reference.allclose(other, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(problem=contraction_problems(), tile=st.integers(1, 64))
def test_tile_size_never_changes_result(problem, tile):
    a, b, pairs = problem
    default = contract(a, b, pairs)
    tiled = contract(a, b, pairs, tile_size=tile)
    assert default.allclose(tiled, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(problem=contraction_problems())
def test_accumulator_kind_never_changes_result(problem):
    a, b, pairs = problem
    dense = contract(a, b, pairs, accumulator="dense", tile_size=8)
    sparse = contract(a, b, pairs, accumulator="sparse", tile_size=8)
    assert dense.allclose(sparse, rtol=1e-8, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(problem=contraction_problems(), scale=st.floats(-4, 4, allow_nan=False))
def test_bilinearity(problem, scale):
    """contract(s*a, b) == s * contract(a, b)."""
    a, b, pairs = problem
    base = contract(a, b, pairs)
    scaled = contract(a.scaled(scale), b, pairs)
    assert scaled.allclose(base.scaled(scale), rtol=1e-8, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(t=coo_tensors(max_modes=2, max_extent=8))
def test_symmetry_of_self_contraction(t):
    """Contracting a matrix with itself over its columns gives a
    symmetric Gram-like output."""
    if t.ndim != 2:
        return
    out = contract(t, t, [(1, 1)]).to_dense()
    np.testing.assert_allclose(out, out.T, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(t=coo_tensors())
def test_roundtrip_coo_canonicalization(t):
    """sum_duplicates is a projection: canonical form is a fixed point
    and preserves tensor equality."""
    canon = t.sum_duplicates()
    assert canon.allclose(t)
    again = canon.sum_duplicates()
    np.testing.assert_array_equal(canon.coords, again.coords)
    np.testing.assert_array_equal(canon.values, again.values)


@st.composite
def matrix_chains(draw):
    """A chain of 2-4 sparse matrices with compatible extents."""
    n = draw(st.integers(2, 4))
    extents = [draw(st.integers(1, 8)) for _ in range(n + 1)]
    mats = []
    for k in range(n):
        rows, cols = extents[k], extents[k + 1]
        cells = rows * cols
        nnz = draw(st.integers(0, min(12, cells)))
        coords = np.array(
            [
                [draw(st.integers(0, rows - 1)) for _ in range(nnz)],
                [draw(st.integers(0, cols - 1)) for _ in range(nnz)],
            ],
            dtype=np.int64,
        ).reshape(2, nnz)
        values = np.array(
            [draw(st.floats(-4, 4, allow_nan=False)) for _ in range(nnz)]
        )
        mats.append(COOTensor(coords, values, (rows, cols)))
    return mats


# ---------------------------------------------------------------------------
# Differential einsum fuzzer: seeded random expressions vs numpy.einsum.
#
# Each seed generates one random tensor-network expression with 2-5
# operands, mostly chained but occasionally with a broken link (so the
# network planner's outer-product handling of disconnected components is
# exercised too), mixing all three supported index roles: contracted
# (shared by two operands, absent from the output), summed out (one
# operand, absent from the output), and kept (one operand, present in
# the output, in randomized output order).  The whole expression is
# evaluated through repro's sparse einsum — cycling the path optimizer
# across greedy/left/dp/sparsity/auto — and through numpy.einsum on the
# densified operands; results must agree to float tolerance.  Both
# machine specs are swept (the plan differs — path, tile sizes,
# accumulator — but the answer must not).
# ---------------------------------------------------------------------------

FUZZ_CASES_PER_MACHINE = 110  # 220 total: >= the 200-case floor

FUZZ_OPTIMIZERS = ("greedy", "left", "dp", "sparsity", "auto")


def _random_einsum_problem(seed):
    """Generate (subscripts, operands) for one fuzz case."""
    rng = np.random.default_rng(0xE15 + seed)
    n_ops = int(rng.integers(2, 6))
    letters = iter("abcdefghijklmnopqrstuvwxyz")
    extents = {}

    def fresh_index():
        ch = next(letters)
        extents[ch] = int(rng.integers(1, 6))
        return ch

    # Chain links: index k appears in operands k and k+1 (contracted).
    # ~15% of back-links are dropped, leaving the forward operand in a
    # separate connected component (an outer-product fuzz case).
    links = [fresh_index() for _ in range(n_ops - 1)]
    subs = []
    for k in range(n_ops):
        sub = []
        if k > 0 and rng.random() >= 0.15:
            sub.append(links[k - 1])
        if k < n_ops - 1:
            sub.append(links[k])
        for _ in range(int(rng.integers(0, 3))):
            sub.append(fresh_index())
        if not sub:
            sub.append(fresh_index())
        rng.shuffle(sub)
        subs.append("".join(sub))

    singles = [ch for sub in subs for ch in sub if ch not in links]
    # Singles split into kept (output) and summed-out; keep at least one
    # index so the output is a real tensor (scalar outputs are out of
    # scope for the sparse COO result type).
    if not singles:
        extra = fresh_index()
        subs[-1] += extra
        singles = [extra]
    n_keep = int(rng.integers(1, len(singles) + 1))
    kept = list(rng.choice(singles, size=n_keep, replace=False))
    rng.shuffle(kept)
    out_sub = "".join(kept)
    expr = ",".join(subs) + "->" + out_sub

    operands = []
    for sub in subs:
        shape = tuple(extents[ch] for ch in sub)
        cells = int(np.prod(shape))
        nnz = int(rng.integers(0, min(cells, 12) + 1))
        coords = np.array(
            [rng.integers(0, extents[ch], size=nnz) for ch in sub],
            dtype=np.int64,
        ).reshape(len(sub), nnz)
        values = rng.uniform(-2.0, 2.0, size=nnz)
        operands.append(COOTensor(coords, values, shape))
    return expr, operands


@pytest.mark.parametrize("machine_name", ["desktop", "server"])
@pytest.mark.parametrize("batch", range(10))
def test_differential_einsum_fuzz(machine_name, batch):
    """Seeded differential sweep against the numpy.einsum oracle."""
    from repro import einsum
    from repro.machine.specs import DESKTOP, SERVER

    machine = DESKTOP if machine_name == "desktop" else SERVER
    per_batch = FUZZ_CASES_PER_MACHINE // 10
    for k in range(per_batch):
        seed = batch * per_batch + k
        expr, operands = _random_einsum_problem(seed)
        optimizer = FUZZ_OPTIMIZERS[seed % len(FUZZ_OPTIMIZERS)]
        expected = np.einsum(expr, *[t.to_dense() for t in operands])
        out = einsum(expr, *operands, machine=machine, optimize=optimizer)
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-10,
            err_msg=(
                f"seed={seed} expr={expr} machine={machine.name} "
                f"optimizer={optimizer}"
            ),
        )


def test_fuzz_sweep_covers_all_subscript_forms():
    """The generator must actually exercise contracted, summed-out and
    kept indices (guards against a silently degenerate sweep)."""
    from repro.network import TensorNetwork

    saw_contracted = saw_summed = saw_kept = 0
    multi_operand = disconnected = 0
    for seed in range(FUZZ_CASES_PER_MACHINE):
        expr, operands = _random_einsum_problem(seed)
        lhs, out = expr.split("->")
        subs = lhs.split(",")
        if len(subs) > 2:
            multi_operand += 1
        network = TensorNetwork.parse(expr, operands)
        if len(network.connected_components()) > 1:
            disconnected += 1
        counts = {}
        for sub in subs:
            for ch in sub:
                counts[ch] = counts.get(ch, 0) + 1
        for ch, n in counts.items():
            if n == 2:
                saw_contracted += 1
            elif ch in out:
                saw_kept += 1
            else:
                saw_summed += 1
    assert saw_contracted > 50
    assert saw_summed > 50
    assert saw_kept > 50
    assert multi_operand > 30
    assert disconnected > 10


@settings(max_examples=30, deadline=None)
@given(mats=matrix_chains())
def test_einsum_chain_matches_dense(mats):
    """Property: einsum over random matrix chains equals the dense
    product, under both binarization orders."""
    from repro import einsum

    letters = "abcdefgh"
    subs = ",".join(letters[k] + letters[k + 1] for k in range(len(mats)))
    expr = f"{subs}->{letters[0]}{letters[len(mats)]}"
    expected = mats[0].to_dense()
    for m in mats[1:]:
        expected = expected @ m.to_dense()
    for optimize in ("greedy", "left"):
        out = einsum(expr, *mats, optimize=optimize)
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-9
        )
