"""Property-based tests on the full contraction pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COOTensor, contract
from repro.tensors.dense import dense_contract


@st.composite
def coo_tensors(draw, max_modes=3, max_extent=6, max_nnz=25):
    ndim = draw(st.integers(1, max_modes))
    shape = tuple(draw(st.integers(1, max_extent)) for _ in range(ndim))
    cells = int(np.prod(shape))
    nnz = draw(st.integers(0, min(max_nnz, cells)))
    coords = []
    for extent in shape:
        coords.append(draw(st.lists(st.integers(0, extent - 1),
                                    min_size=nnz, max_size=nnz)))
    values = draw(st.lists(
        st.floats(-8, 8, allow_nan=False), min_size=nnz, max_size=nnz))
    arr = np.array(coords, dtype=np.int64).reshape(ndim, nnz)
    return COOTensor(arr, np.array(values), shape)


@st.composite
def contraction_problems(draw):
    """A pair of tensors with at least one matching-extent mode pair."""
    a = draw(coo_tensors())
    # Build b to share the first contracted extent.
    c_extent = a.shape[0]
    b_ndim = draw(st.integers(1, 3))
    b_shape = [c_extent] + [draw(st.integers(1, 6)) for _ in range(b_ndim - 1)]
    cells = int(np.prod(b_shape))
    nnz = draw(st.integers(0, min(20, cells)))
    coords = []
    for extent in b_shape:
        coords.append(draw(st.lists(st.integers(0, extent - 1),
                                    min_size=nnz, max_size=nnz)))
    values = draw(st.lists(
        st.floats(-8, 8, allow_nan=False), min_size=nnz, max_size=nnz))
    b = COOTensor(np.array(coords, dtype=np.int64).reshape(b_ndim, nnz),
                  np.array(values), tuple(b_shape))
    return a, b, [(0, 0)]


@settings(max_examples=40, deadline=None)
@given(problem=contraction_problems())
def test_fastcc_equals_einsum(problem):
    a, b, pairs = problem
    out = contract(a, b, pairs)
    expected = dense_contract(a, b, pairs)
    np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(problem=contraction_problems())
def test_all_methods_agree(problem):
    a, b, pairs = problem
    reference = contract(a, b, pairs, method="fastcc")
    for method in ("sparta", "taco", "co"):
        other = contract(a, b, pairs, method=method)
        assert reference.allclose(other, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(problem=contraction_problems(), tile=st.integers(1, 64))
def test_tile_size_never_changes_result(problem, tile):
    a, b, pairs = problem
    default = contract(a, b, pairs)
    tiled = contract(a, b, pairs, tile_size=tile)
    assert default.allclose(tiled, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(problem=contraction_problems())
def test_accumulator_kind_never_changes_result(problem):
    a, b, pairs = problem
    dense = contract(a, b, pairs, accumulator="dense", tile_size=8)
    sparse = contract(a, b, pairs, accumulator="sparse", tile_size=8)
    assert dense.allclose(sparse, rtol=1e-8, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(problem=contraction_problems(), scale=st.floats(-4, 4, allow_nan=False))
def test_bilinearity(problem, scale):
    """contract(s*a, b) == s * contract(a, b)."""
    a, b, pairs = problem
    base = contract(a, b, pairs)
    scaled = contract(a.scaled(scale), b, pairs)
    assert scaled.allclose(base.scaled(scale), rtol=1e-8, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(t=coo_tensors(max_modes=2, max_extent=8))
def test_symmetry_of_self_contraction(t):
    """Contracting a matrix with itself over its columns gives a
    symmetric Gram-like output."""
    if t.ndim != 2:
        return
    out = contract(t, t, [(1, 1)]).to_dense()
    np.testing.assert_allclose(out, out.T, rtol=1e-8, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(t=coo_tensors())
def test_roundtrip_coo_canonicalization(t):
    """sum_duplicates is a projection: canonical form is a fixed point
    and preserves tensor equality."""
    canon = t.sum_duplicates()
    assert canon.allclose(t)
    again = canon.sum_duplicates()
    np.testing.assert_array_equal(canon.coords, again.coords)
    np.testing.assert_array_equal(canon.values, again.values)


@st.composite
def matrix_chains(draw):
    """A chain of 2-4 sparse matrices with compatible extents."""
    n = draw(st.integers(2, 4))
    extents = [draw(st.integers(1, 8)) for _ in range(n + 1)]
    mats = []
    for k in range(n):
        rows, cols = extents[k], extents[k + 1]
        cells = rows * cols
        nnz = draw(st.integers(0, min(12, cells)))
        coords = np.array(
            [
                [draw(st.integers(0, rows - 1)) for _ in range(nnz)],
                [draw(st.integers(0, cols - 1)) for _ in range(nnz)],
            ],
            dtype=np.int64,
        ).reshape(2, nnz)
        values = np.array(
            [draw(st.floats(-4, 4, allow_nan=False)) for _ in range(nnz)]
        )
        mats.append(COOTensor(coords, values, (rows, cols)))
    return mats


@settings(max_examples=30, deadline=None)
@given(mats=matrix_chains())
def test_einsum_chain_matches_dense(mats):
    """Property: einsum over random matrix chains equals the dense
    product, under both binarization orders."""
    from repro import einsum

    letters = "abcdefgh"
    subs = ",".join(letters[k] + letters[k + 1] for k in range(len(mats)))
    expr = f"{subs}->{letters[0]}{letters[len(mats)]}"
    expected = mats[0].to_dense()
    for m in mats[1:]:
        expected = expected @ m.to_dense()
    for optimize in ("greedy", "left"):
        out = einsum(expr, *mats, optimize=optimize)
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-9
        )
