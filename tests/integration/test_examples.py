"""Smoke tests: the shipped examples must run clean.

Examples are deliverables; these tests execute the quick ones in a
fresh interpreter (exactly how a user runs them) and assert success
plus a sanity marker in the output.  The two sweep-heavy examples
(`loop_order_analysis`, `tile_size_tuning`) are exercised by the
benchmark suite's equivalent harnesses instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

QUICK_EXAMPLES = {
    "quickstart.py": "verified against numpy.einsum",
    "quantum_chemistry.py": "speedup",
    "frostt_contractions.py": "FROSTT .tns format",
    "parallel_scaling.py": "simulated dynamic scheduling",
    "tensor_networks.py": "planned executions",
    "graph_analytics.py": "graph engine",
}


@pytest.mark.parametrize("script,marker", sorted(QUICK_EXAMPLES.items()))
def test_example_runs(script, marker):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout, (
        f"{script} output missing marker {marker!r}:\n{result.stdout[-1000:]}"
    )


def test_all_examples_are_covered_or_listed():
    """Every example file is either smoke-tested here or explicitly
    exempted (so new examples don't silently skip CI)."""
    exempt = {"loop_order_analysis.py", "tile_size_tuning.py"}
    present = {
        f for f in os.listdir(EXAMPLES_DIR)
        if f.endswith(".py") and not f.startswith("_")
    }
    assert present == set(QUICK_EXAMPLES) | exempt
