"""End-to-end DLPNO pipeline test (the paper's Section 6.1 application).

Builds all six quantum-chemistry contractions exactly as the paper
defines them:

    Int_ovov(i, mu, j, nu)  = TE_ov(i, mu, k)  x TE_ov(j, nu, k)
    Int_vvoo(mu, nu, i, j)  = TE_vv(mu, nu, k) x TE_oo(i, j, k)
    Int_vvov(mu, nu, i, mu1)= TE_vv(mu, nu, k) x TE_ov(i, mu1, k)

and cross-checks three independent expressions of each: the pair-mode
``contract`` API, the einsum string API, and the dense ``numpy.einsum``
ground truth on a shrunken molecule.
"""

import numpy as np
import pytest

from repro import contract, einsum
from repro.data.quantum import (
    DLPNO_CONTRACTIONS,
    MoleculeSpec,
    generate_te_tensor,
)

#: A tiny molecule so the dense cross-check stays cheap.
TINY = MoleculeSpec(
    "tiny", n_occ=5, n_virt=12, n_aux=10,
    density_ov=0.15, density_vv=0.4, density_oo=0.1,
)

SUBSCRIPTS = {
    "ovov": "imk,jnk->imjn",
    "vvoo": "mnk,ijk->mnij",
    "vvov": "mnk,ipk->mnip",
}


@pytest.fixture(scope="module")
def te():
    return {
        kind: generate_te_tensor(kind, TINY, seed=3 + i)
        for i, kind in enumerate(("ov", "vv", "oo"))
    }


@pytest.mark.parametrize("name", sorted(DLPNO_CONTRACTIONS))
def test_three_expressions_agree(te, name):
    kind_l, kind_r = DLPNO_CONTRACTIONS[name]
    left, right = te[kind_l], te[kind_r]
    via_pairs = contract(left, right, [(2, 2)])
    via_einsum = einsum(SUBSCRIPTS[name], left, right)
    assert via_pairs.allclose(via_einsum)
    expected = np.einsum(
        SUBSCRIPTS[name], left.to_dense(), right.to_dense()
    )
    np.testing.assert_allclose(via_pairs.to_dense(), expected, rtol=1e-9)


def test_four_center_integral_symmetry(te):
    """Int_ovov built from the same TE tensor is pair-exchange
    symmetric: Int(i, mu, j, nu) == Int(j, nu, i, mu)."""
    t = te["ov"]
    integrals = contract(t, t, [(2, 2)]).to_dense()
    np.testing.assert_allclose(
        integrals, np.transpose(integrals, (2, 3, 0, 1)), rtol=1e-9
    )


def test_output_arities_match_paper(te):
    """Each contraction produces the 4-mode tensor the paper names."""
    for name, (kl, kr) in DLPNO_CONTRACTIONS.items():
        out = contract(te[kl], te[kr], [(2, 2)])
        assert out.ndim == 4, name


def test_sparsity_propagates(te):
    """The integrals inherit the domain-local block structure: output
    density stays far below 1 for the sparse-operand contractions."""
    out = contract(te["ov"], te["ov"], [(2, 2)])
    assert 0.0 < out.density < 0.6
