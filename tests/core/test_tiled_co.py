"""Unit tests for the FaSTCC tiled-CO kernel."""

import numpy as np
import pytest

from repro.analysis.counters import Counters
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import build_tiled_tables, tiled_co_contract
from repro.data.random_tensors import random_operand_pair
from repro.errors import WorkspaceLimitError
from repro.machine.specs import DESKTOP

from tests.conftest import reference_product, triples_to_dense


def plan_for(left, right, **kw):
    spec = ContractionSpec((left.ext_extent, left.con_extent),
                           (left.con_extent, right.ext_extent),
                           [(1, 0)])
    return choose_plan(spec, left.nnz, right.nnz, DESKTOP, **kw)


class TestBuildTiledTables:
    def test_partitioning(self, operand_pair):
        left, _ = operand_pair
        tables = build_tiled_tables(left, tile=16)
        assert tables.num_tiles == (left.ext_extent + 15) // 16
        total = sum(t.nnz for t in tables.tables if t is not None)
        assert total == left.nnz

    def test_intra_tile_indices_bounded(self, operand_pair):
        left, _ = operand_pair
        tables = build_tiled_tables(left, tile=8)
        for t in tables.tables:
            if t is not None:
                idx, _ = t.payload
                assert idx.min() >= 0 and idx.max() < 8

    def test_tile_assignment(self, operand_pair):
        # Element with external index e lands in table e // tile with
        # intra index e % tile: verify by reconstructing.
        left, _ = operand_pair
        tile = 8
        tables = build_tiled_tables(left, tile=tile)
        rebuilt = []
        for i, t in enumerate(tables.tables):
            if t is None:
                continue
            intra, vals = t.payload
            # reconstruct (ext, con, val) triples
            starts, counts = t.spans_for_all_keys()
            cons = np.repeat(t.keys(), counts)
            rebuilt.append((i * tile + intra, cons, vals))
        ext = np.concatenate([e for e, _, _ in rebuilt])
        con = np.concatenate([c for _, c, _ in rebuilt])
        vals = np.concatenate([v for _, _, v in rebuilt])
        orig = sorted(zip(left.ext.tolist(), left.con.tolist(), left.values.tolist()))
        got = sorted(zip(ext.tolist(), con.tolist(), vals.tolist()))
        assert got == pytest.approx(orig)

    def test_empty_operand(self):
        left, _ = random_operand_pair(10, 10, 10, density_l=0.1, density_r=0.1)
        left.ext = left.ext[:0]
        left.con = left.con[:0]
        left.values = left.values[:0]
        tables = build_tiled_tables(left, tile=4)
        assert tables.nonempty_tiles() == []

    def test_bad_tile(self, operand_pair):
        with pytest.raises(ValueError):
            build_tiled_tables(operand_pair[0], tile=0)

    def test_parallel_construction_matches(self, operand_pair):
        left, _ = operand_pair
        seq = build_tiled_tables(left, tile=8, n_workers=1)
        par = build_tiled_tables(left, tile=8, n_workers=4)
        assert seq.nonempty_tiles() == par.nonempty_tiles()
        for i in seq.nonempty_tiles():
            np.testing.assert_array_equal(
                seq.tables[i].keys(), par.tables[i].keys()
            )

    @pytest.mark.parametrize("workers", [1, 3, 4])
    def test_team_split_pair_construction(self, operand_pair, workers):
        """Section 4.2's split thread teams: the pair builder must match
        back-to-back sequential builds regardless of team size."""
        from repro.core.tiled_co import build_tiled_tables_pair

        left, right = operand_pair
        hl_ref = build_tiled_tables(left, tile=8)
        hr_ref = build_tiled_tables(right, tile=16)
        hl, hr = build_tiled_tables_pair(
            left, right, 8, 16, n_workers=workers
        )
        assert hl.nonempty_tiles() == hl_ref.nonempty_tiles()
        assert hr.nonempty_tiles() == hr_ref.nonempty_tiles()
        for i in hl.nonempty_tiles():
            np.testing.assert_array_equal(
                hl.tables[i].keys(), hl_ref.tables[i].keys()
            )


class TestKernelCorrectness:
    @pytest.mark.parametrize("tile", [1, 3, 8, 16, 64, 1024])
    def test_tile_size_invariance(self, operand_pair, tile):
        """The result must not depend on the tile size."""
        left, right = operand_pair
        expected = reference_product(left, right)
        plan = plan_for(left, right, tile_size=tile)
        l, r, v, _ = tiled_co_contract(left, right, plan)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    @pytest.mark.parametrize("acc", ["dense", "sparse"])
    def test_accumulator_invariance(self, operand_pair, acc):
        left, right = operand_pair
        expected = reference_product(left, right)
        plan = plan_for(left, right, accumulator=acc, tile_size=8)
        l, r, v, _ = tiled_co_contract(left, right, plan)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_invariance(self, operand_pair, workers):
        left, right = operand_pair
        expected = reference_product(left, right)
        plan = plan_for(left, right, tile_size=8)
        l, r, v, _ = tiled_co_contract(left, right, plan, n_workers=workers)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_chunked_expansion_matches(self, operand_pair):
        left, right = operand_pair
        expected = reference_product(left, right)
        plan = plan_for(left, right, tile_size=16)
        l, r, v, _ = tiled_co_contract(left, right, plan, chunk_pairs=7)
        got = triples_to_dense(l, r, v, left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_unique_output_coordinates(self, operand_pair):
        left, right = operand_pair
        plan = plan_for(left, right, tile_size=8)
        l, r, v, _ = tiled_co_contract(left, right, plan)
        combined = l * right.ext_extent + r
        assert len(np.unique(combined)) == len(combined)

    def test_disjoint_contraction_keys(self):
        # No common c between the operands: empty output.
        left, right = random_operand_pair(8, 20, 8, density_l=0.2, density_r=0.2, seed=5)
        left.con = left.con % 10
        right.con = 10 + right.con % 10
        plan = plan_for(left, right, tile_size=4)
        l, r, v, stats = tiled_co_contract(left, right, plan)
        assert v.size == 0

    def test_extent_mismatch(self):
        left, right = random_operand_pair(8, 10, 8, density_l=0.2, density_r=0.2)
        right.con_extent = 11
        plan = plan_for(left, right, tile_size=4)
        right2 = right
        with pytest.raises(ValueError):
            tiled_co_contract(left, right2, plan)


class TestKernelInstrumentation:
    def test_task_costs_recorded(self, operand_pair):
        left, right = operand_pair
        plan = plan_for(left, right, tile_size=8)
        _, _, _, stats = tiled_co_contract(left, right, plan)
        assert stats.num_tasks >= 1
        assert stats.task_costs.shape[0] == stats.num_tasks
        assert (stats.task_costs >= 0).all()

    def test_phase_seconds(self, operand_pair):
        left, right = operand_pair
        plan = plan_for(left, right, tile_size=8)
        _, _, _, stats = tiled_co_contract(left, right, plan)
        assert {"build_tables", "contract", "merge_output"} <= set(stats.phase_seconds)
        assert stats.total_seconds >= stats.kernel_seconds

    def test_counters_populated(self, operand_pair):
        left, right = operand_pair
        c = Counters()
        plan = plan_for(left, right, tile_size=8)
        _, _, v, _ = tiled_co_contract(left, right, plan, counters=c)
        assert c.hash_queries > 0
        assert c.data_volume > 0
        assert c.output_nnz == v.shape[0]

    def test_data_volume_grows_with_smaller_tiles(self):
        """Section 5.3: Data_Vol = nnz_L * NR + nnz_R * NL."""
        left, right = random_operand_pair(
            128, 64, 128, density_l=0.05, density_r=0.05, seed=6
        )
        vols = {}
        for tile in [16, 64]:
            c = Counters()
            plan = plan_for(left, right, tile_size=tile)
            tiled_co_contract(left, right, plan, counters=c)
            vols[tile] = c.data_volume
        assert vols[16] > vols[64]

    def test_task_guard(self):
        left, right = random_operand_pair(
            4096, 8, 4096, density_l=0.01, density_r=0.01, seed=7
        )
        plan = plan_for(left, right, tile_size=1, accumulator="dense")
        with pytest.raises(WorkspaceLimitError):
            tiled_co_contract(left, right, plan, max_tasks=100)


class TestTaskScheduling:
    def test_schedules_agree_numerically(self, operand_pair):
        left, right = operand_pair
        plan = plan_for(left, right, tile_size=8)
        fifo = tiled_co_contract(left, right, plan, schedule="fifo")
        heavy = tiled_co_contract(left, right, plan, schedule="heavy_first")
        a = triples_to_dense(*fifo[:3], left.ext_extent, right.ext_extent)
        b = triples_to_dense(*heavy[:3], left.ext_extent, right.ext_extent)
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_bad_schedule_rejected(self, operand_pair):
        left, right = operand_pair
        plan = plan_for(left, right, tile_size=8)
        with pytest.raises(ValueError):
            tiled_co_contract(left, right, plan, schedule="random")

    def test_heavy_first_dispatch_order(self):
        """heavy_first must dispatch tile pairs in non-increasing order
        of their estimated weight (nnz(HL_i) * nnz(HR_j)) — the LPT
        mechanism, checked deterministically via the recorded pair
        order (wall-clock task costs are too noisy to assert on)."""
        from repro.data.random_tensors import clustered_coo
        from repro.core.plan import ContractionSpec
        from repro.core.tiled_co import build_tiled_tables

        t = clustered_coo((600, 80), nnz=8000, seed=9, n_clusters=3,
                          spread=0.02)
        spec = ContractionSpec(t.shape, t.shape, [(1, 1)])
        left = spec.linearize_left(t).sum_duplicates()
        right = spec.linearize_right(t).sum_duplicates()
        plan = plan_for(left, right, tile_size=64)
        _, _, _, stats = tiled_co_contract(
            left, right, plan, schedule="heavy_first"
        )
        hl = build_tiled_tables(left, plan.tile_l)
        hr = build_tiled_tables(right, plan.tile_r)
        weights = [
            hl.tables[i].nnz * hr.tables[j].nnz for i, j in stats.task_pairs
        ]
        assert weights == sorted(weights, reverse=True)
        # And a few distinct weights actually exist (clustered input).
        assert len(set(weights)) > 1

        # FIFO keeps grid order instead.
        _, _, _, fifo_stats = tiled_co_contract(
            left, right, plan, schedule="fifo"
        )
        assert fifo_stats.task_pairs == sorted(fifo_stats.task_pairs)
