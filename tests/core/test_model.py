"""Unit tests for the probabilistic model (Algorithm 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    choose_accumulator,
    choose_plan,
    estimate_output_density,
)
from repro.core.plan import ContractionSpec
from repro.machine.specs import DESKTOP, SERVER


class TestDensityEstimate:
    def test_closed_form_small(self):
        # p_L = p_R = 0.5, C = 1: P = 1 - (1 - 0.25) = 0.25.
        assert estimate_output_density(2, 2, 1, 1, 1) == pytest.approx(0.25)

    def test_dense_inputs_give_dense_output(self):
        assert estimate_output_density(10, 10, 10, 100, 100) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert estimate_output_density(10, 10, 10, 0, 100) == 0.0

    def test_ultra_sparse_precision(self):
        # p*p ~ 1e-24 regime: the naive (1-x)^C would round to 1.0 and
        # estimate 0; the log1p/expm1 form must keep ~C * p_L * p_R.
        L = R = C = 1_000_000
        nnz = 1000
        d = estimate_output_density(L, R, C, nnz, nnz)
        p = nnz / (L * C)
        assert d == pytest.approx(C * p * p, rel=1e-3)
        assert d > 0

    def test_monotone_in_nnz(self):
        prev = 0.0
        for nnz in [10, 100, 1000, 5000]:
            d = estimate_output_density(100, 100, 100, nnz, 500)
            assert d >= prev
            prev = d

    def test_monotone_in_c_for_fixed_densities(self):
        # Fixed p_L, p_R: more contraction indices -> more chances to hit.
        d1 = estimate_output_density(100, 100, 10, 100, 100)
        d2 = estimate_output_density(100, 100, 1000, 10_000, 10_000)
        assert d2 > d1

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_output_density(0, 1, 1, 0, 0)


class TestPaperTable3Decisions:
    """Algorithm 7 at the paper's original parameters must reproduce
    every D/S decision in Table 3 (FROSTT rows, where the original
    extents are published in Table 2)."""

    @pytest.mark.parametrize(
        "name,L,C,expected",
        [
            # chicago (6186, 24, 77, 32), nnz 5.33M
            ("chic_0", 24 * 77 * 32, 6186, "dense"),
            ("chic_01", 77 * 32, 6186 * 24, "dense"),
            ("chic_123", 6186, 24 * 77 * 32, "dense"),
            # nips (2482, 2862, 14036, 17), nnz 3.1M
            ("NIPS_2", 2482 * 2862 * 17, 14036, "sparse"),
            ("NIPS_23", 2482 * 2862, 14036 * 17, "sparse"),
            ("NIPS_013", 14036, 2482 * 2862 * 17, "dense"),
            # uber (183, 24, 1140, 1717), nnz 3.31M
            ("uber_02", 24 * 1717, 183 * 1140, "dense"),
            ("uber_123", 183, 24 * 1140 * 1717, "dense"),
            # vast (165427, 11374, 2, 100, 89), nnz 26M
            ("vast_01", 2 * 100 * 89, 165427 * 11374, "dense"),
            ("vast_014", 2 * 100, 165427 * 11374 * 89, "dense"),
        ],
    )
    def test_decision(self, name, L, C, expected):
        nnz = {
            "chic": 5_330_673,
            "NIPS": 3_101_609,
            "uber": 3_309_490,
            "vast": 26_021_945,
        }[name.split("_")[0]]
        choice = choose_accumulator(L, L, C, nnz, nnz, DESKTOP)
        assert choice.accumulator == expected, name

    # Table 3's published E_nnz values correspond to a probe tile of
    # T^2 = 65536 words (the per-core L2); see choose_accumulator's
    # docstring.  The probe override reproduces them exactly.
    TABLE3_PROBE = DESKTOP.l2_bytes_per_core / DESKTOP.word_bytes

    def test_table3_e_nnz_chic0(self):
        # Table 3 reports E_nnz = 4.79e4 for chic_0.
        choice = choose_accumulator(
            24 * 77 * 32, 24 * 77 * 32, 6186, 5_330_673, 5_330_673, DESKTOP,
            probe_t_sq=self.TABLE3_PROBE,
        )
        assert choice.expected_tile_nnz == pytest.approx(4.79e4, rel=0.05)

    def test_table3_e_nnz_nips2(self):
        choice = choose_accumulator(
            2482 * 2862 * 17, 2482 * 2862 * 17, 14036, 3_101_609, 3_101_609,
            DESKTOP, probe_t_sq=self.TABLE3_PROBE,
        )
        assert choice.expected_tile_nnz == pytest.approx(3.08e-3, rel=0.15)

    def test_table3_e_nnz_uber02(self):
        choice = choose_accumulator(
            24 * 1717, 24 * 1717, 183 * 1140, 3_309_490, 3_309_490, DESKTOP,
            probe_t_sq=self.TABLE3_PROBE,
        )
        assert choice.expected_tile_nnz == pytest.approx(2.00e3, rel=0.05)

    def test_table3_e_nnz_nips013(self):
        choice = choose_accumulator(
            14036, 14036, 2482 * 2862 * 17, 3_101_609, 3_101_609, DESKTOP,
            probe_t_sq=self.TABLE3_PROBE,
        )
        assert choice.expected_tile_nnz == pytest.approx(2.65e1, rel=0.05)

    def test_decisions_probe_invariant(self):
        # The D/S decision is the same under the L3-share probe and the
        # L2 probe for every paper benchmark shape.
        shapes = [
            (24 * 77 * 32, 6186, 5_330_673),
            (2482 * 2862 * 17, 14036, 3_101_609),
            (2482 * 2862, 14036 * 17, 3_101_609),
            (14036, 2482 * 2862 * 17, 3_101_609),
            (24 * 1717, 183 * 1140, 3_309_490),
        ]
        for L, C, nnz in shapes:
            a = choose_accumulator(L, L, C, nnz, nnz, DESKTOP)
            b = choose_accumulator(
                L, L, C, nnz, nnz, DESKTOP, probe_t_sq=self.TABLE3_PROBE
            )
            assert a.accumulator == b.accumulator


class TestChoosePlan:
    def _spec(self):
        return ContractionSpec((64, 32), (32, 48), [(1, 0)])

    def test_auto_follows_model(self):
        plan = choose_plan(self._spec(), 500, 500, DESKTOP)
        assert plan.accumulator in ("dense", "sparse")
        assert plan.tile_l <= 64 and plan.tile_r <= 48

    def test_forced_accumulator(self):
        plan = choose_plan(self._spec(), 500, 500, DESKTOP, accumulator="sparse")
        assert plan.accumulator == "sparse"

    def test_tile_override(self):
        plan = choose_plan(self._spec(), 500, 500, DESKTOP, tile_size=16)
        assert plan.tile_l == 16 and plan.tile_r == 16

    def test_tile_clamped_to_extent(self):
        plan = choose_plan(self._spec(), 500, 500, DESKTOP, tile_size=10_000)
        assert plan.tile_l == 64 and plan.tile_r == 48

    def test_num_tiles(self):
        plan = choose_plan(self._spec(), 500, 500, DESKTOP, tile_size=16)
        assert plan.num_tiles == (4, 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            choose_plan(self._spec(), 5, 5, DESKTOP, accumulator="bogus")
        with pytest.raises(ValueError):
            choose_plan(self._spec(), 5, 5, DESKTOP, tile_size=0)

    def test_machine_changes_tile(self):
        # Same contraction, bigger per-core cache share -> bigger probe
        # tile; the recorded machine name must follow.
        plan_d = choose_plan(self._spec(), 500, 500, DESKTOP)
        plan_s = choose_plan(self._spec(), 500, 500, SERVER)
        assert plan_d.machine_name != plan_s.machine_name


@settings(max_examples=80, deadline=None)
@given(
    L=st.integers(1, 10**7),
    R=st.integers(1, 10**7),
    C=st.integers(1, 10**7),
    fl=st.floats(0.0, 1.0),
    fr=st.floats(0.0, 1.0),
)
def test_density_estimate_is_probability(L, R, C, fl, fr):
    nnz_l = int(fl * L * C)
    nnz_r = int(fr * C * R)
    d = estimate_output_density(L, R, C, nnz_l, nnz_r)
    assert 0.0 <= d <= 1.0
    if nnz_l and nnz_r:
        assert d > 0.0
        # Union bound: at most C * p_L * p_R.
        p = (nnz_l / (L * C)) * (nnz_r / (C * R))
        assert d <= min(1.0, C * p) * (1 + 1e-9)
