"""Unit tests for compiled contraction expressions."""

import numpy as np
import pytest

from repro.core.expression import contract_expression
from repro.data.random_tensors import random_coo
from repro.errors import PlanError, ShapeError


class TestTwoOperand:
    def test_basic_reuse(self):
        expr = contract_expression("ij,jk->ik", (6, 8), (8, 5), nnz=[20, 15])
        for seed in range(3):
            a = random_coo((6, 8), nnz=20, seed=seed)
            b = random_coo((8, 5), nnz=15, seed=100 + seed)
            out = expr(a, b)
            np.testing.assert_allclose(
                out.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9
            )

    def test_plan_precomputed(self):
        expr = contract_expression("ij,jk->ik", (600, 80), (80, 600),
                                   nnz=[5000, 5000])
        assert expr.plan is not None
        assert expr.plan.accumulator in ("dense", "sparse")

    def test_output_permutation(self):
        expr = contract_expression("ij,jk->ki", (6, 8), (8, 5))
        a = random_coo((6, 8), nnz=20, seed=1)
        b = random_coo((8, 5), nnz=15, seed=2)
        np.testing.assert_allclose(
            expr(a, b).to_dense(), (a.to_dense() @ b.to_dense()).T, rtol=1e-9
        )

    def test_dlpno_expression(self):
        expr = contract_expression(
            "imk,jnk->imjn", (4, 6, 5), (4, 6, 5), nnz=[30, 30]
        )
        t1 = random_coo((4, 6, 5), nnz=30, seed=3)
        t2 = random_coo((4, 6, 5), nnz=30, seed=4)
        expected = np.einsum("imk,jnk->imjn", t1.to_dense(), t2.to_dense())
        np.testing.assert_allclose(expr(t1, t2).to_dense(), expected, rtol=1e-9)

    def test_sum_out_falls_back(self):
        expr = contract_expression("ij,jk->k", (6, 8), (8, 5))
        a = random_coo((6, 8), nnz=20, seed=5)
        b = random_coo((8, 5), nnz=15, seed=6)
        expected = np.einsum("ij,jk->k", a.to_dense(), b.to_dense())
        np.testing.assert_allclose(expr(a, b).to_dense(), expected, rtol=1e-9)

    def test_shape_mismatch_at_call(self):
        expr = contract_expression("ij,jk->ik", (6, 8), (8, 5))
        a = random_coo((6, 9), nnz=10, seed=7)
        b = random_coo((9, 5), nnz=10, seed=8)
        with pytest.raises(ShapeError):
            expr(a, b)

    def test_operand_count_mismatch(self):
        expr = contract_expression("ij,jk->ik", (6, 8), (8, 5))
        a = random_coo((6, 8), nnz=10, seed=9)
        with pytest.raises(PlanError):
            expr(a)

    def test_disjoint_subscripts_plan_as_outer_product(self):
        # Regression: outer products used to be rejected; they are now
        # planned as a (trivial) network with an explicit outer step.
        expr = contract_expression("ij,kl->ijkl", (3, 3), (4, 4))
        assert expr.plan is None
        assert expr.path == [(0, 1)]
        a = random_coo((3, 3), nnz=4, seed=20)
        b = random_coo((4, 4), nnz=5, seed=21)
        expected = np.einsum("ij,kl->ijkl", a.to_dense(), b.to_dense())
        np.testing.assert_allclose(expr(a, b).to_dense(), expected, rtol=1e-9)

    def test_subscript_shape_arity_checked(self):
        with pytest.raises(ShapeError):
            contract_expression("ijk,jk->i", (3, 3), (3, 3))


class TestNetwork:
    def test_frozen_path_reused(self):
        expr = contract_expression(
            "ij,jk,kl->il", (30, 40), (40, 20), (20, 10),
            nnz=[300, 200, 50],
        )
        assert expr.path is not None
        a = random_coo((30, 40), nnz=300, seed=10)
        b = random_coo((40, 20), nnz=200, seed=11)
        c = random_coo((20, 10), nnz=50, seed=12)
        out = expr(a, b, c)
        expected = a.to_dense() @ b.to_dense() @ c.to_dense()
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)

    def test_default_nnz_estimates(self):
        expr = contract_expression("ij,jk,kl->il", (10, 10), (10, 10), (10, 10))
        assert expr.path is not None

    def test_network_shape_mismatch_at_call(self):
        # Regression: the declared-shape gate applies to *every* operand
        # of a network expression, not only the two-operand fast path,
        # and names the offending position.
        expr = contract_expression(
            "ij,jk,kl->il", (30, 40), (40, 20), (20, 10),
            nnz=[300, 200, 50],
        )
        a = random_coo((30, 40), nnz=30, seed=13)
        b = random_coo((40, 20), nnz=30, seed=14)
        bad = random_coo((21, 10), nnz=10, seed=15)
        with pytest.raises(ShapeError, match=r"operand 2 .*\(21, 10\)"):
            expr(a, b, bad)

    def test_mismatch_message_names_operand(self):
        expr = contract_expression("ij,jk->ik", (6, 8), (8, 5))
        a = random_coo((6, 8), nnz=10, seed=16)
        bad = random_coo((8, 7), nnz=10, seed=17)
        with pytest.raises(ShapeError, match="operand 1"):
            expr(a, bad)
