"""Unit and property tests for the dense/sparse tile accumulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import Counters
from repro.core.accumulators import (
    DenseTileAccumulator,
    SparseTileAccumulator,
    make_accumulator,
)
from repro.errors import WorkspaceLimitError


@pytest.fixture(params=["dense", "sparse"])
def acc(request):
    return make_accumulator(request.param, 8, 8)


class TestCommonBehaviour:
    def test_single_update_drain(self, acc):
        acc.update_batch(np.array([5]), np.array([2.5]))
        pos, vals = acc.drain()
        np.testing.assert_array_equal(pos, [5])
        np.testing.assert_array_equal(vals, [2.5])

    def test_accumulation(self, acc):
        acc.update_batch(np.array([3, 3, 3]), np.array([1.0, 2.0, 3.0]))
        pos, vals = acc.drain()
        assert pos.tolist() == [3]
        assert vals[0] == 6.0

    def test_multiple_batches(self, acc):
        acc.update_batch(np.array([1, 2]), np.array([1.0, 2.0]))
        acc.update_batch(np.array([2, 3]), np.array([0.5, 3.0]))
        pos, vals = acc.drain()
        d = dict(zip(pos.tolist(), vals.tolist()))
        assert d == {1: 1.0, 2: 2.5, 3: 3.0}

    def test_empty_batch(self, acc):
        acc.update_batch(np.empty(0, dtype=np.int64), np.empty(0))
        pos, _ = acc.drain()
        assert pos.size == 0

    def test_reset_clears(self, acc):
        acc.update_batch(np.array([7]), np.array([1.0]))
        acc.reset()
        pos, _ = acc.drain()
        assert pos.size == 0
        acc.update_batch(np.array([7]), np.array([5.0]))
        _, vals = acc.drain()
        assert vals[0] == 5.0

    def test_nnz_tracks_active(self, acc):
        acc.update_batch(np.array([0, 1, 0]), np.array([1.0, 1.0, 1.0]))
        assert acc.nnz == 2

    def test_counters_updates(self):
        c = Counters()
        a = make_accumulator("dense", 4, 4, counters=c)
        a.update_batch(np.array([0, 1, 1]), np.ones(3))
        assert c.accum_updates == 3


class TestDenseSpecifics:
    def test_mismatched_lengths(self):
        a = DenseTileAccumulator(4, 4)
        with pytest.raises(ValueError):
            a.update_batch(np.array([0, 1]), np.array([1.0]))

    def test_cell_guard(self):
        with pytest.raises(WorkspaceLimitError):
            DenseTileAccumulator(1 << 14, 1 << 14)

    def test_workspace_counted(self):
        c = Counters()
        DenseTileAccumulator(8, 16, counters=c)
        assert c.workspace_cells == 128

    def test_apos_no_duplicates(self):
        a = DenseTileAccumulator(8, 8)
        a.update_batch(np.array([5, 5, 6, 5]), np.ones(4))
        a.update_batch(np.array([5, 6]), np.ones(2))
        active = a.apos[: a.nnz]
        assert sorted(active.tolist()) == [5, 6]

    def test_apos_growth(self):
        a = DenseTileAccumulator(64, 64)
        # Exceed the initial apos capacity of 1024.
        positions = np.arange(3000, dtype=np.int64)
        a.update_batch(positions, np.ones(3000))
        assert a.nnz == 3000

    def test_drain_full_scan_matches_apos_drain(self, rng):
        a = DenseTileAccumulator(16, 16)
        p = rng.integers(0, 256, size=100)
        a.update_batch(p, rng.random(100))
        pos1, val1 = a.drain()
        pos2, val2 = a.drain_full_scan()
        d1 = dict(zip(pos1.tolist(), val1.tolist()))
        d2 = dict(zip(pos2.tolist(), val2.tolist()))
        assert d1 == pytest.approx(d2)

    def test_reset_is_sparse(self):
        # Reset must clear exactly the touched cells.
        a = DenseTileAccumulator(8, 8)
        a.update_batch(np.array([0, 63]), np.array([1.0, 2.0]))
        a.reset()
        assert not a.bm.any()
        assert a.buf.sum() == 0.0


class TestSparseSpecifics:
    def test_large_positions(self):
        # Sparse tiles exist precisely to index huge tile areas.
        a = SparseTileAccumulator(1 << 20, 1 << 20)
        big = np.array([(1 << 39) + 17, 3], dtype=np.int64)
        a.update_batch(big, np.array([1.0, 2.0]))
        pos, vals = a.drain()
        assert set(pos.tolist()) == {3, (1 << 39) + 17}

    def test_drain_sorted(self, rng):
        a = SparseTileAccumulator(64, 64, expected_nnz=4)
        p = rng.integers(0, 4096, size=200)
        a.update_batch(p, rng.random(200))
        pos, _ = a.drain()
        assert np.all(np.diff(pos) > 0)

    def test_table_grows(self):
        a = SparseTileAccumulator(1 << 16, 1 << 16, expected_nnz=4)
        a.update_batch(np.arange(10_000, dtype=np.int64), np.ones(10_000))
        assert a.nnz == 10_000


class TestPackedBitmaskMode:
    def test_equivalent_to_bool_mode(self, rng):
        a = DenseTileAccumulator(16, 16, bitmask="bool")
        b = DenseTileAccumulator(16, 16, bitmask="packed")
        for _ in range(4):
            p = rng.integers(0, 256, size=60)
            v = rng.random(60)
            a.update_batch(p, v)
            b.update_batch(p, v)
        pa, va = a.drain()
        pb, vb = b.drain()
        assert dict(zip(pa.tolist(), va.tolist())) == pytest.approx(
            dict(zip(pb.tolist(), vb.tolist()))
        )

    def test_reset_and_reuse(self, rng):
        b = DenseTileAccumulator(8, 8, bitmask="packed")
        b.update_batch(np.array([1, 2]), np.array([1.0, 2.0]))
        b.reset()
        b.update_batch(np.array([2]), np.array([5.0]))
        pos, vals = b.drain()
        assert pos.tolist() == [2]
        assert vals[0] == 5.0

    def test_full_scan_drain(self, rng):
        b = DenseTileAccumulator(8, 8, bitmask="packed")
        p = rng.integers(0, 64, size=30)
        b.update_batch(p, rng.random(30))
        p1, v1 = b.drain()
        p2, v2 = b.drain_full_scan()
        assert dict(zip(p1.tolist(), v1.tolist())) == pytest.approx(
            dict(zip(p2.tolist(), v2.tolist()))
        )

    def test_memory_footprint(self):
        b = DenseTileAccumulator(64, 64, bitmask="packed")
        assert b.bm.nbytes == 64 * 64 // 8

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            DenseTileAccumulator(4, 4, bitmask="sparse")


class TestFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_accumulator("hybrid", 4, 4)


@settings(max_examples=40, deadline=None)
@given(
    updates=st.lists(
        st.lists(st.tuples(st.integers(0, 63), st.floats(-10, 10)), max_size=30),
        max_size=5,
    )
)
def test_dense_and_sparse_agree(updates):
    """Property: both accumulator kinds produce the same tile contents."""
    dense = make_accumulator("dense", 8, 8)
    sparse = make_accumulator("sparse", 8, 8)
    for batch in updates:
        if not batch:
            continue
        pos = np.array([p for p, _ in batch], dtype=np.int64)
        vals = np.array([v for _, v in batch])
        dense.update_batch(pos, vals)
        sparse.update_batch(pos, vals)
    dp, dv = dense.drain()
    sp, sv = sparse.drain()
    assert dict(zip(dp.tolist(), dv.tolist())) == pytest.approx(
        dict(zip(sp.tolist(), sv.tolist()))
    )
