"""Unit and property tests for semiring contractions."""

import numpy as np
import pytest

from repro.core.semiring import (
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    semiring_contract,
)
from repro.data.random_tensors import random_coo
from repro.tensors.coo import COOTensor


def brute_force(left: COOTensor, right: COOTensor, semiring):
    """Reference: dict-based semiring product over stored nonzeros."""
    out: dict[tuple[int, int], float] = {}
    for (i, k), lv in left:
        for (k2, j), rv in right:
            if k != k2:
                continue
            prod = float(semiring.multiply(np.array([lv]), np.array([rv]))[0])
            key = (i, j)
            if key in out:
                out[key] = float(
                    semiring.add(np.array([out[key]]), np.array([prod]))[0]
                )
            else:
                out[key] = prod
    return out


@pytest.mark.parametrize(
    "semiring", [PLUS_TIMES, MIN_PLUS, MAX_PLUS, MAX_TIMES, OR_AND]
)
def test_matches_brute_force(semiring):
    left = random_coo((8, 10), nnz=30, seed=1)
    right = random_coo((10, 7), nnz=25, seed=2)
    out = semiring_contract(left, right, [(1, 0)], semiring=semiring)
    expected = brute_force(left, right, semiring)
    got = {
        (int(out.coords[0, e]), int(out.coords[1, e])): out.values[e]
        for e in range(out.nnz)
    }
    assert got == pytest.approx(expected)


def test_plus_times_matches_contract():
    from repro import contract

    left = random_coo((9, 11, 6), nnz=40, seed=3)
    right = random_coo((6, 11, 8), nnz=35, seed=4)
    pairs = [(2, 0), (1, 1)]
    a = semiring_contract(left, right, pairs, semiring=PLUS_TIMES)
    b = contract(left, right, pairs)
    assert a.allclose(b)


def test_min_plus_shortest_paths():
    """(min, +) squared adjacency = all shortest 2-hop path lengths."""
    #   0 -1-> 1 -2-> 2,  0 -5-> 2 direct is NOT an edge here; also
    #   0 -4-> 3 -1-> 2: min(1+2, 4+1) = 3.
    edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 3, 4.0), (3, 2, 1.0)]
    coords = np.array([[e[0] for e in edges], [e[1] for e in edges]])
    vals = np.array([e[2] for e in edges])
    g = COOTensor(coords, vals, (4, 4))
    two_hop = semiring_contract(g, g, [(1, 0)], semiring=MIN_PLUS)
    d = {
        (int(two_hop.coords[0, e]), int(two_hop.coords[1, e])): two_hop.values[e]
        for e in range(two_hop.nnz)
    }
    assert d[(0, 2)] == 3.0  # min over the two 2-hop routes

def test_or_and_reachability():
    edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]
    coords = np.array([[e[0] for e in edges], [e[1] for e in edges]])
    g = COOTensor(coords, np.ones(3), (3, 3))
    two_hop = semiring_contract(g, g, [(1, 0)], semiring=OR_AND)
    reach = {
        (int(two_hop.coords[0, e]), int(two_hop.coords[1, e]))
        for e in range(two_hop.nnz)
        if two_hop.values[e] != 0.0
    }
    assert reach == {(0, 2), (1, 0), (2, 1)}


def test_named_semirings():
    left = random_coo((5, 5), nnz=10, seed=5)
    out = semiring_contract(left, left, [(1, 0)], semiring="max_plus")
    ref = semiring_contract(left, left, [(1, 0)], semiring=MAX_PLUS)
    assert out.allclose(ref) or np.array_equal(out.values, ref.values)


def test_unknown_name():
    left = random_coo((3, 3), nnz=3, seed=6)
    with pytest.raises(ValueError):
        semiring_contract(left, left, [(1, 0)], semiring="tropical-deluxe")


def test_duplicate_inputs_add_combined():
    # (min,+): duplicate edges keep the lighter one.
    g = COOTensor([[0, 0], [1, 1]], [5.0, 2.0], (2, 2))
    h = COOTensor([[1], [0]], [1.0], (2, 2))
    out = semiring_contract(g, h, [(1, 0)], semiring=MIN_PLUS)
    assert out.values[0] == 3.0  # min(5,2) + 1


def test_empty_inputs():
    g = COOTensor.empty((4, 4))
    out = semiring_contract(g, g, [(1, 0)], semiring=MIN_PLUS)
    assert out.nnz == 0


def test_custom_semiring():
    # (+, min): a legitimate exotic combination.
    custom = Semiring("plus_min", np.add, np.minimum, 0.0)
    left = random_coo((6, 6), nnz=12, seed=7)
    right = random_coo((6, 6), nnz=12, seed=8)
    out = semiring_contract(left, right, [(1, 0)], semiring=custom)
    expected = brute_force(left, right, custom)
    got = {
        (int(out.coords[0, e]), int(out.coords[1, e])): out.values[e]
        for e in range(out.nnz)
    }
    assert got == pytest.approx(expected)


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    ring=st.sampled_from([PLUS_TIMES, MIN_PLUS, MAX_PLUS, MAX_TIMES]),
)
def test_semiring_matches_brute_force_property(data, ring):
    """Property: the vectorized semiring kernel equals the dict-based
    brute force on random matrices, for every built-in semiring."""
    L = data.draw(st.integers(1, 6))
    C = data.draw(st.integers(1, 6))
    R = data.draw(st.integers(1, 6))
    nnz_l = data.draw(st.integers(0, min(10, L * C)))
    nnz_r = data.draw(st.integers(0, min(10, C * R)))

    def tensor(rows, cols, nnz, seed_pool):
        coords = np.array(
            [[data.draw(st.integers(0, rows - 1)) for _ in range(nnz)],
             [data.draw(st.integers(0, cols - 1)) for _ in range(nnz)]],
            dtype=np.int64,
        ).reshape(2, nnz)
        vals = np.array(
            [data.draw(st.floats(-4, 4, allow_nan=False)) for _ in range(nnz)]
        )
        return COOTensor(coords, vals, (rows, cols)).sum_duplicates()

    left = tensor(L, C, nnz_l, 0)
    right = tensor(C, R, nnz_r, 1)
    out = semiring_contract(left, right, [(1, 0)], semiring=ring)
    expected = brute_force(left, right, ring)
    got = {
        (int(out.coords[0, e]), int(out.coords[1, e])): out.values[e]
        for e in range(out.nnz)
    }
    assert got == pytest.approx(expected)
