"""Unit tests for the public contract()/self_contract() API."""

import numpy as np
import pytest

from repro import COOTensor, Counters, contract, self_contract
from repro.data.random_tensors import random_coo
from repro.machine.specs import SERVER
from repro.tensors.dense import dense_contract, dense_self_contract


class TestBasicAPI:
    def test_matrix_multiply(self):
        a = random_coo((6, 8), nnz=20, seed=1)
        b = random_coo((8, 5), nnz=15, seed=2)
        out = contract(a, b, [(1, 0)])
        np.testing.assert_allclose(out.to_dense(), a.to_dense() @ b.to_dense())

    def test_docstring_example(self):
        a = COOTensor([[0, 1], [1, 0]], [2.0, 3.0], (2, 2))
        out = contract(a, a, pairs=[(1, 0)])
        np.testing.assert_allclose(out.to_dense(), [[6.0, 0.0], [0.0, 6.0]])

    def test_bad_method(self):
        a = random_coo((4, 4), nnz=4, seed=3)
        with pytest.raises(ValueError):
            contract(a, a, [(1, 0)], method="gpu")

    def test_output_shape_and_type(self):
        a = random_coo((3, 4, 5), nnz=20, seed=4)
        b = random_coo((5, 7), nnz=15, seed=5)
        out = contract(a, b, [(2, 0)])
        assert isinstance(out, COOTensor)
        assert out.shape == (3, 4, 7)

    def test_duplicates_in_inputs_combined(self):
        a = COOTensor([[0, 0], [1, 1]], [1.0, 2.0], (2, 2))  # dup at (0,1)
        b = COOTensor([[1], [0]], [4.0], (2, 2))
        out = contract(a, b, [(1, 0)])
        # a is effectively [[0,3],[0,0]]; b[1,0] = 4 -> out[0,0] = 12
        assert out.to_dense()[0, 0] == 12.0

    def test_empty_inputs(self):
        a = COOTensor.empty((4, 5))
        b = random_coo((5, 3), nnz=5, seed=6)
        out = contract(a, b, [(1, 0)])
        assert out.nnz == 0
        assert out.shape == (4, 3)

    def test_canonical_output_sorted(self):
        a = random_coo((10, 12), nnz=40, seed=7)
        b = random_coo((12, 10), nnz=40, seed=8)
        out = contract(a, b, [(1, 0)])
        lin = out.linearized()
        assert np.all(np.diff(lin) > 0)

    def test_full_contraction_to_scalar(self):
        a = random_coo((5, 6), nnz=12, seed=9)
        out = contract(a, a, [(0, 0), (1, 1)])
        assert out.shape == ()
        expected = float((a.to_dense() ** 2).sum())
        assert float(out.to_dense()) == pytest.approx(expected)

    def test_machine_parameter(self):
        a = random_coo((30, 30), nnz=60, seed=10)
        out_d, stats_d = contract(a, a, [(1, 0)], return_stats=True)
        out_s, stats_s = contract(a, a, [(1, 0)], machine=SERVER, return_stats=True)
        assert out_d.allclose(out_s)
        assert stats_s.plan.machine_name == "server-tr-3990x"


class TestMethodEquivalence:
    @pytest.mark.parametrize("method", ["fastcc", "sparta", "taco", "ci", "cm", "co"])
    def test_all_methods_match_einsum(self, method):
        a = random_coo((7, 6, 5), nnz=40, seed=11)
        b = random_coo((5, 6, 8), nnz=35, seed=12)
        pairs = [(2, 0), (1, 1)]
        out = contract(a, b, pairs, method=method)
        np.testing.assert_allclose(
            out.to_dense(), dense_contract(a, b, pairs), rtol=1e-9
        )

    @pytest.mark.parametrize("method", ["fastcc", "sparta", "taco"])
    def test_methods_on_skewed_inputs(self, method):
        # One dense operand, one very sparse.
        a = random_coo((12, 10), nnz=100, seed=13)
        b = random_coo((10, 200), nnz=12, seed=14)
        out = contract(a, b, [(1, 0)], method=method)
        np.testing.assert_allclose(
            out.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9
        )


class TestSelfContract:
    @pytest.mark.parametrize("modes", [[0], [1], [0, 1], [0, 2], [1, 2]])
    def test_matches_einsum(self, modes):
        t = random_coo((6, 5, 7), nnz=40, seed=15)
        out = self_contract(t, modes)
        np.testing.assert_allclose(
            out.to_dense(), dense_self_contract(t, modes), rtol=1e-9
        )

    def test_paper_output_arity(self):
        # Chicago 123: 4-mode tensor contracted over 3 modes -> 2-mode out.
        t = random_coo((5, 4, 3, 6), nnz=30, seed=16)
        out = self_contract(t, [1, 2, 3])
        assert out.ndim == 2


class TestStatsAndOverrides:
    def test_return_stats(self):
        a = random_coo((20, 20), nnz=50, seed=17)
        out, stats = contract(a, a, [(1, 0)], return_stats=True)
        assert stats.plan is not None
        assert stats.output_nnz == out.nnz
        assert "linearize" in stats.phase_seconds
        assert "delinearize" in stats.phase_seconds

    def test_counters_threaded_through(self):
        a = random_coo((20, 20), nnz=50, seed=18)
        c = Counters()
        contract(a, a, [(1, 0)], counters=c)
        assert c.accum_updates > 0

    def test_tile_and_accumulator_override(self):
        a = random_coo((40, 40), nnz=100, seed=19)
        out_default = contract(a, a, [(1, 0)])
        out_forced = contract(
            a, a, [(1, 0)], accumulator="sparse", tile_size=8
        )
        assert out_default.allclose(out_forced)

    def test_n_workers(self):
        a = random_coo((40, 40), nnz=100, seed=20)
        out1 = contract(a, a, [(1, 0)], n_workers=1, tile_size=8)
        out4 = contract(a, a, [(1, 0)], n_workers=4, tile_size=8)
        assert out1.allclose(out4)


class TestNewMethods:
    def test_sparta_improved_via_api(self):
        a = random_coo((12, 15), nnz=50, seed=21)
        b = random_coo((15, 9), nnz=40, seed=22)
        out = contract(a, b, [(1, 0)], method="sparta_improved")
        np.testing.assert_allclose(
            out.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9
        )

    def test_taco_mm_via_api_with_stats(self):
        a = random_coo((8, 6, 5), nnz=30, seed=23)
        b = random_coo((5, 6, 7), nnz=30, seed=24)
        out, stats = contract(
            a, b, [(2, 0), (1, 1)], method="taco_mm", return_stats=True
        )
        assert stats.output_nnz == out.nnz
        assert "contract" in stats.phase_seconds

    def test_canonical_false_skips_sorting(self):
        a = random_coo((20, 20), nnz=80, seed=25)
        raw = contract(a, a, [(1, 0)], canonical=False)
        canon = contract(a, a, [(1, 0)], canonical=True)
        assert raw.allclose(canon)  # same tensor, any layout

    def test_counters_accumulate_across_calls(self):
        a = random_coo((15, 15), nnz=40, seed=26)
        c = Counters()
        contract(a, a, [(1, 0)], counters=c)
        first = c.accum_updates
        contract(a, a, [(1, 0)], counters=c)
        assert c.accum_updates == 2 * first

    def test_schedule_forwarding_not_needed_for_correctness(self):
        # The public API always uses the kernel default (heavy_first);
        # verify outputs equal the baseline regardless.
        a = random_coo((40, 40), nnz=200, seed=27)
        out = contract(a, a, [(1, 0)], tile_size=8)
        np.testing.assert_allclose(
            out.to_dense(), a.to_dense() @ a.to_dense(), rtol=1e-9
        )
