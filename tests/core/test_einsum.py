"""Unit and property tests for the einsum front end and tensor-network
contraction."""

import numpy as np
import pytest

from repro.core.einsum import contraction_path, einsum, parse_subscripts
from repro.data.random_tensors import random_coo
from repro.errors import PlanError, ShapeError


class TestParseSubscripts:
    def test_basic(self):
        inputs, out = parse_subscripts("ij,jk->ik", 2)
        assert inputs == ["ij", "jk"]
        assert out == "ik"

    def test_whitespace_tolerated(self):
        inputs, out = parse_subscripts(" ij , jk -> ik ", 2)
        assert inputs == ["ij", "jk"]

    def test_scalar_output(self):
        _, out = parse_subscripts("ij,ij->", 2)
        assert out == ""

    def test_missing_arrow(self):
        with pytest.raises(PlanError):
            parse_subscripts("ij,jk", 2)

    def test_operand_count_mismatch(self):
        with pytest.raises(PlanError):
            parse_subscripts("ij,jk->ik", 3)

    def test_trace_rejected(self):
        with pytest.raises(PlanError):
            parse_subscripts("ii,ij->j", 2)

    def test_three_way_index_rejected(self):
        with pytest.raises(PlanError):
            parse_subscripts("ij,jk,jl->ikl", 3)

    def test_hadamard_rejected(self):
        with pytest.raises(PlanError):
            parse_subscripts("ij,ij->ij", 2)

    def test_phantom_output_index(self):
        with pytest.raises(PlanError):
            parse_subscripts("ij,jk->ix", 2)

    def test_repeated_output_index(self):
        with pytest.raises(PlanError):
            parse_subscripts("ij,jk->ii", 2)


class TestTwoOperand:
    def test_matrix_multiply(self):
        a = random_coo((6, 8), nnz=20, seed=1)
        b = random_coo((8, 5), nnz=15, seed=2)
        out = einsum("ij,jk->ik", a, b)
        np.testing.assert_allclose(out.to_dense(), a.to_dense() @ b.to_dense())

    def test_output_permutation(self):
        a = random_coo((6, 8), nnz=20, seed=1)
        b = random_coo((8, 5), nnz=15, seed=2)
        out = einsum("ij,jk->ki", a, b)
        np.testing.assert_allclose(
            out.to_dense(), (a.to_dense() @ b.to_dense()).T
        )

    def test_paper_dlpno_expression(self):
        # Int_ovov(i, mu, j, nu) = TE_ov(i, mu, k) x TE_ov(j, nu, k)
        te1 = random_coo((4, 6, 5), nnz=30, seed=3)
        te2 = random_coo((4, 6, 5), nnz=30, seed=4)
        out = einsum("imk,jnk->imjn", te1, te2)
        expected = np.einsum("imk,jnk->imjn", te1.to_dense(), te2.to_dense())
        np.testing.assert_allclose(out.to_dense(), expected)

    def test_sum_out_free_index(self):
        a = random_coo((6, 8), nnz=20, seed=5)
        b = random_coo((8, 5), nnz=15, seed=6)
        out = einsum("ij,jk->k", a, b)
        expected = np.einsum("ij,jk->k", a.to_dense(), b.to_dense())
        np.testing.assert_allclose(out.to_dense(), expected)

    def test_full_contraction(self):
        a = random_coo((5, 7), nnz=15, seed=7)
        out = einsum("ij,ij->", a, a)
        assert out.shape == ()
        assert float(out.to_dense()) == pytest.approx(
            float((a.to_dense() ** 2).sum())
        )

    def test_mode_count_mismatch(self):
        a = random_coo((5, 7), nnz=5, seed=8)
        with pytest.raises(ShapeError):
            einsum("ijk,jk->i", a, a)

    def test_extent_conflict(self):
        a = random_coo((5, 7), nnz=5, seed=9)
        b = random_coo((6, 4), nnz=5, seed=10)
        with pytest.raises(ShapeError):
            einsum("ij,jk->ik", a, b)

    def test_method_passthrough(self):
        a = random_coo((6, 8), nnz=20, seed=11)
        b = random_coo((8, 5), nnz=15, seed=12)
        fast = einsum("ij,jk->ik", a, b, method="fastcc")
        sparta = einsum("ij,jk->ik", a, b, method="sparta")
        assert fast.allclose(sparta)


class TestNetworks:
    def test_three_matrix_chain(self):
        a = random_coo((6, 8), nnz=20, seed=13)
        b = random_coo((8, 7), nnz=18, seed=14)
        c = random_coo((7, 5), nnz=14, seed=15)
        out = einsum("ij,jk,kl->il", a, b, c)
        expected = a.to_dense() @ b.to_dense() @ c.to_dense()
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)

    def test_four_tensor_network(self):
        a = random_coo((4, 5), nnz=12, seed=16)
        b = random_coo((5, 6), nnz=14, seed=17)
        c = random_coo((6, 3), nnz=10, seed=18)
        d = random_coo((3, 4), nnz=8, seed=19)
        out = einsum("ij,jk,kl,lm->im", a, b, c, d)
        expected = np.einsum(
            "ij,jk,kl,lm->im",
            a.to_dense(), b.to_dense(), c.to_dense(), d.to_dense(),
        )
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)

    def test_network_ring_to_scalar(self):
        a = random_coo((4, 5), nnz=10, seed=20)
        b = random_coo((5, 4), nnz=10, seed=21)
        out = einsum("ij,ji->", a, b)
        expected = np.einsum("ij,ji->", a.to_dense(), b.to_dense())
        assert float(out.to_dense()) == pytest.approx(float(expected))

    def test_left_order_matches_greedy(self):
        a = random_coo((6, 8), nnz=20, seed=22)
        b = random_coo((8, 7), nnz=18, seed=23)
        c = random_coo((7, 5), nnz=14, seed=24)
        greedy = einsum("ij,jk,kl->il", a, b, c, optimize="greedy")
        left = einsum("ij,jk,kl->il", a, b, c, optimize="left")
        assert greedy.allclose(left)

    def test_bad_optimize(self):
        a = random_coo((4, 4), nnz=4, seed=25)
        with pytest.raises(PlanError):
            einsum("ij,jk->ik", a, a, optimize="quantum")

    def test_three_mode_network(self):
        # A tensor-network shape: two 3-D tensors and a matrix.
        t1 = random_coo((4, 5, 6), nnz=25, seed=26)
        t2 = random_coo((6, 3, 7), nnz=25, seed=27)
        m = random_coo((7, 2), nnz=8, seed=28)
        out = einsum("abc,cde,ef->abdf", t1, t2, m)
        expected = np.einsum(
            "abc,cde,ef->abdf", t1.to_dense(), t2.to_dense(), m.to_dense()
        )
        np.testing.assert_allclose(out.to_dense(), expected, rtol=1e-9)


class TestContractionPath:
    def test_path_length(self):
        a = random_coo((4, 5), nnz=10, seed=29)
        b = random_coo((5, 6), nnz=10, seed=30)
        c = random_coo((6, 3), nnz=10, seed=31)
        path = contraction_path("ij,jk,kl->il", [a, b, c])
        assert len(path) == 2

    def test_greedy_prefers_small_intermediate(self):
        # (huge x huge) would make a massive intermediate; greedy must
        # contract the small pair first.
        big1 = random_coo((500, 4), nnz=100, seed=32)
        small = random_coo((4, 4), nnz=8, seed=33)
        big2 = random_coo((4, 500), nnz=100, seed=34)
        # chain: big1(ij) small(jk) big2(kl): contracting big1 x small or
        # small x big2 first is fine; big1 x big2 is impossible (no
        # shared index) and must never be chosen.
        path = contraction_path("ij,jk,kl->il", [big1, small, big2])
        first = path[0]
        assert first != (0, 2)


class TestSumOutModes:
    def test_direct_marginalization(self):
        from repro.core.einsum import _sum_out_modes

        t = random_coo((4, 5, 6), nnz=30, seed=40)
        reduced = _sum_out_modes(t, [1])
        assert reduced.shape == (4, 6)
        np.testing.assert_allclose(
            reduced.to_dense(), t.to_dense().sum(axis=1), rtol=1e-10
        )

    def test_sum_out_all_but_one(self):
        from repro.core.einsum import _sum_out_modes

        t = random_coo((4, 5, 6), nnz=30, seed=41)
        reduced = _sum_out_modes(t, [0, 2])
        np.testing.assert_allclose(
            reduced.to_dense(), t.to_dense().sum(axis=(0, 2)), rtol=1e-10
        )

    def test_sum_out_everything(self):
        from repro.core.einsum import _sum_out_modes

        t = random_coo((4, 5), nnz=10, seed=42)
        reduced = _sum_out_modes(t, [0, 1])
        assert reduced.shape == ()
        assert float(reduced.to_dense()) == pytest.approx(t.values.sum())
