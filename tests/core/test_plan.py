"""Unit tests for contraction specs, linearization and plans."""

import numpy as np
import pytest

from repro.core.plan import ContractionSpec, LinearizedOperand
from repro.data.random_tensors import random_coo
from repro.errors import PlanError, ShapeError
from repro.tensors.dense import dense_contract


class TestContractionSpec:
    def test_mode_classification(self):
        spec = ContractionSpec((3, 4, 5), (4, 6, 5), [(1, 0), (2, 2)])
        assert spec.left_external == (0,)
        assert spec.right_external == (1,)
        assert spec.output_shape == (3, 6)
        assert spec.L == 3 and spec.R == 6 and spec.C == 20

    def test_output_mode_order(self):
        spec = ContractionSpec((2, 3, 4), (3, 5, 6), [(1, 0)])
        assert spec.output_shape == (2, 4, 5, 6)

    def test_extent_mismatch(self):
        with pytest.raises(ShapeError):
            ContractionSpec((3, 4), (5, 6), [(1, 0)])

    def test_no_pairs(self):
        with pytest.raises(PlanError):
            ContractionSpec((3,), (3,), [])

    def test_repeated_left_mode(self):
        with pytest.raises(PlanError):
            ContractionSpec((3, 3), (3, 3), [(0, 0), (0, 1)])

    def test_mode_out_of_range(self):
        with pytest.raises(PlanError):
            ContractionSpec((3,), (3,), [(1, 0)])

    def test_full_contraction_scalar_output(self):
        spec = ContractionSpec((3, 4), (3, 4), [(0, 0), (1, 1)])
        assert spec.output_shape == ()
        assert spec.L == 1 and spec.R == 1


class TestLinearization:
    def test_left_right_share_contraction_space(self):
        a = random_coo((4, 5, 6), nnz=30, seed=1)
        b = random_coo((6, 5, 3), nnz=20, seed=2)
        spec = ContractionSpec(a.shape, b.shape, [(2, 0), (1, 1)])
        lop = spec.linearize_left(a)
        rop = spec.linearize_right(b)
        assert lop.con_extent == rop.con_extent == 30
        assert lop.ext_extent == 4
        assert rop.ext_extent == 3

    def test_contraction_index_consistency(self):
        # The same (c-mode coordinate tuple) must linearize identically on
        # both sides even when the paired modes sit at different positions.
        a = random_coo((4, 5, 6), nnz=40, seed=3)
        b = random_coo((6, 7, 5), nnz=40, seed=4)
        spec = ContractionSpec(a.shape, b.shape, [(1, 2), (2, 0)])
        lop = spec.linearize_left(a)
        rop = spec.linearize_right(b)
        # Element of a at (i, j, k) has c = j * 6 + k; element of b at
        # (k, m, j) must produce the same c.
        j, k = a.coords[1, 0], a.coords[2, 0]
        assert lop.con[0] == j * 6 + k
        j2, k2 = b.coords[2, 0], b.coords[0, 0]
        assert rop.con[0] == j2 * 6 + k2

    def test_wrong_shape_rejected(self):
        a = random_coo((4, 5), nnz=5, seed=5)
        spec = ContractionSpec((4, 5), (5, 4), [(1, 0)])
        with pytest.raises(ShapeError):
            spec.linearize_right(a)

    def test_roundtrip_through_output(self):
        a = random_coo((4, 5), nnz=10, seed=6)
        b = random_coo((5, 3), nnz=10, seed=7)
        spec = ContractionSpec(a.shape, b.shape, [(1, 0)])
        l = np.array([0, 3], dtype=np.int64)
        r = np.array([2, 1], dtype=np.int64)
        v = np.array([1.5, -2.0])
        out = spec.delinearize_output(l, r, v)
        assert out.shape == (4, 3)
        dense = out.to_dense()
        assert dense[0, 2] == 1.5
        assert dense[3, 1] == -2.0


class TestLinearizedOperand:
    def test_sum_duplicates(self):
        op = LinearizedOperand(
            ext=np.array([1, 1, 2], dtype=np.int64),
            con=np.array([3, 3, 0], dtype=np.int64),
            values=np.array([1.0, 2.0, 5.0]),
            ext_extent=4,
            con_extent=5,
        )
        s = op.sum_duplicates()
        assert s.nnz == 2
        assert 3.0 in s.values.tolist()

    def test_density(self):
        op = LinearizedOperand(
            ext=np.array([0], dtype=np.int64),
            con=np.array([0], dtype=np.int64),
            values=np.array([1.0]),
            ext_extent=4,
            con_extent=5,
        )
        assert op.density == 1 / 20

    def test_empty_sum_duplicates(self):
        op = LinearizedOperand(
            ext=np.empty(0, dtype=np.int64),
            con=np.empty(0, dtype=np.int64),
            values=np.empty(0),
            ext_extent=4,
            con_extent=5,
        )
        assert op.sum_duplicates().nnz == 0


class TestEndToEndLinearization:
    @pytest.mark.parametrize(
        "a_shape,b_shape,pairs",
        [
            ((4, 6), (6, 3), [(1, 0)]),
            ((3, 4, 5), (5, 4, 2), [(2, 0), (1, 1)]),
            ((2, 3, 4, 5), (4, 5, 3), [(2, 0), (3, 1)]),
            ((6, 7), (7, 6), [(0, 1), (1, 0)]),
        ],
    )
    def test_linearized_product_matches_einsum(self, a_shape, b_shape, pairs):
        a = random_coo(a_shape, nnz=20, seed=8)
        b = random_coo(b_shape, nnz=15, seed=9)
        spec = ContractionSpec(a.shape, b.shape, pairs)
        lop = spec.linearize_left(a).sum_duplicates()
        rop = spec.linearize_right(b).sum_duplicates()
        lm = np.zeros((spec.L, spec.C))
        np.add.at(lm, (lop.ext, lop.con), lop.values)
        rm = np.zeros((spec.R, spec.C))
        np.add.at(rm, (rop.ext, rop.con), rop.values)
        flat = lm @ rm.T
        expected = dense_contract(a, b, pairs)
        np.testing.assert_allclose(flat.reshape(expected.shape), expected)
