"""Unit tests for the benchmark run-all driver (selection logic only —
the harnesses themselves are exercised by their own tests)."""

import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))

import run_all  # noqa: E402


class TestHarnessList:
    def test_all_listed_files_exist(self):
        for name in run_all.HARNESSES:
            assert os.path.isfile(os.path.join(BENCH_DIR, f"{name}.py")), name

    def test_every_bench_file_is_listed(self):
        present = {
            f[:-3]
            for f in os.listdir(BENCH_DIR)
            if f.startswith("bench_") and f.endswith(".py")
        }
        assert present == set(run_all.HARNESSES)

    def test_all_harnesses_have_main(self):
        import importlib

        for name in run_all.HARNESSES:
            module = importlib.import_module(name)
            assert callable(getattr(module, "main", None)), name


class TestDriver:
    def test_only_selection(self, tmp_path, capsys):
        rc = run_all.main(["--out", str(tmp_path), "--only", "table2_datasets"])
        assert rc == 0
        assert (tmp_path / "table2_datasets.txt").exists()
        out = capsys.readouterr().out
        assert "1/1 harnesses succeeded" in out

    def test_unknown_selection_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main(["--out", str(tmp_path), "--only", "nonexistent"])

    def test_failure_recorded_not_raised(self, tmp_path, monkeypatch, capsys):
        import importlib

        module = importlib.import_module("bench_table2_datasets")

        def boom():
            raise RuntimeError("injected harness fault")

        monkeypatch.setattr(module, "main", boom)
        rc = run_all.main(["--out", str(tmp_path), "--only", "table2_datasets"])
        assert rc == 1
        content = (tmp_path / "table2_datasets.txt").read_text()
        assert "FAILED" in content
