"""Package-level hygiene tests: imports, exports, docstrings."""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.tensors",
    "repro.hashing",
    "repro.core",
    "repro.baselines",
    "repro.parallel",
    "repro.machine",
    "repro.data",
    "repro.analysis",
    "repro.util",
    "repro.runtime",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} has no module docstring"

    def test_every_module_importable(self):
        failures = []
        for pkg_name in SUBPACKAGES:
            pkg = importlib.import_module(pkg_name)
            for info in pkgutil.iter_modules(pkg.__path__):
                full = f"{pkg_name}.{info.name}"
                try:
                    importlib.import_module(full)
                except Exception as exc:  # noqa: BLE001
                    failures.append((full, repr(exc)))
        assert not failures, failures

    def test_no_circular_import_from_cold_start(self):
        # A fresh interpreter importing the deepest kernel first must
        # not trip circular imports.
        import subprocess
        import sys

        code = "import repro.core.tiled_co; import repro; print('ok')"
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "ok"


class TestExports:
    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_all_resolvable(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol}"


class TestDocstrings:
    def test_public_functions_documented(self):
        import inspect

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
        assert not undocumented, undocumented
