"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import LinearizedOperand
from repro.data.random_tensors import random_coo, random_operand_pair


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_tensor():
    """A 3-mode tensor small enough to densify in every test."""
    return random_coo((9, 7, 11), nnz=60, seed=42)


@pytest.fixture
def operand_pair():
    """A matched pair of linearized operands with moderate density."""
    return random_operand_pair(40, 30, 35, density_l=0.08, density_r=0.1, seed=3)


def make_pair(L=40, C=30, R=35, dl=0.08, dr=0.1, seed=0):
    return random_operand_pair(L, C, R, density_l=dl, density_r=dr, seed=seed)


def operand_to_dense(op: LinearizedOperand, transpose: bool = False) -> np.ndarray:
    """Materialize a linearized operand as a dense (ext, con) matrix."""
    mat = np.zeros((op.ext_extent, op.con_extent))
    np.add.at(mat, (op.ext, op.con), op.values)
    return mat.T if transpose else mat


def reference_product(left: LinearizedOperand, right: LinearizedOperand) -> np.ndarray:
    """Dense ground truth of the linearized contraction L @ R^T-ish form."""
    lm = operand_to_dense(left)            # (L, C)
    rm = operand_to_dense(right)           # (R, C)
    return lm @ rm.T                       # (L, R)


def triples_to_dense(l_idx, r_idx, values, L, R) -> np.ndarray:
    out = np.zeros((L, R))
    np.add.at(out, (np.asarray(l_idx), np.asarray(r_idx)), np.asarray(values))
    return out
