"""Unit tests for the profiling helpers."""

import pytest

from repro.analysis.profile import ProfileEntry, profile_callable, profile_case


def busy_function():
    total = 0
    for i in range(50_000):
        total += i * i
    return total


class TestProfileCallable:
    def test_returns_entries(self):
        entries = profile_callable(busy_function, top=5)
        assert entries
        assert all(isinstance(e, ProfileEntry) for e in entries)

    def test_finds_the_hot_function(self):
        entries = profile_callable(busy_function, top=10)
        assert any("busy_function" in e.function for e in entries)

    def test_sorted_by_cumulative(self):
        entries = profile_callable(busy_function, top=10)
        cums = [e.cumulative_time for e in entries]
        assert cums == sorted(cums, reverse=True)

    def test_tottime_sort(self):
        entries = profile_callable(busy_function, top=10, sort="tottime")
        owns = [e.total_time for e in entries]
        assert owns == sorted(owns, reverse=True)

    def test_top_limits(self):
        assert len(profile_callable(busy_function, top=3)) <= 3

    def test_bad_sort(self):
        with pytest.raises(ValueError):
            profile_callable(busy_function, sort="mood")

    def test_exception_still_disables(self):
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            profile_callable(boom)
        # Profiling again must work (the profiler was disabled).
        assert profile_callable(busy_function, top=1)


class TestProfileCase:
    def test_profiles_registry_case(self):
        entries = profile_case("uber_123", top=10)
        assert entries
        # The contraction machinery must appear in the hot list.
        assert any("repro" in e.function for e in entries)
