"""Unit tests for the cross-kernel verification harness."""

from repro.analysis.verify import cross_validate
from repro.data.random_tensors import random_coo


class TestCrossValidate:
    def test_agreement_on_healthy_kernels(self):
        a = random_coo((10, 12), nnz=40, seed=1)
        b = random_coo((12, 9), nnz=35, seed=2)
        report = cross_validate(a, b, [(1, 0)])
        assert report.all_agree
        assert "ok" in report.summary()

    def test_includes_reference_entry(self):
        a = random_coo((8, 8), nnz=20, seed=3)
        report = cross_validate(a, a, [(1, 0)], methods=("sparta",))
        methods = [r.method for r in report.results]
        assert methods[0] == "fastcc"
        assert "sparta" in methods

    def test_errors_recorded_not_raised(self):
        a = random_coo((8, 8), nnz=20, seed=4)
        # "taco_mm" rejects full contractions with PlanError; the matrix
        # must record it and continue.
        report = cross_validate(
            a, a, [(0, 0), (1, 1)], methods=("taco_mm", "sparta")
        )
        taco_entry = next(r for r in report.results if r.method == "taco_mm")
        assert not taco_entry.ok
        assert taco_entry.error == "PlanError"
        sparta_entry = next(r for r in report.results if r.method == "sparta")
        assert sparta_entry.agrees

    def test_all_agree_false_on_error_free_disagreement(self):
        # Force a "disagreement" by comparing with absurd tolerance on
        # a case where values differ from zero: shrink rtol/atol to 0
        # cannot create disagreement between correct kernels, so instead
        # verify the flag logic directly.
        from repro.analysis.verify import MethodResult, VerificationReport

        report = VerificationReport(reference="fastcc")
        report.results.append(MethodResult(method="fastcc", agrees=True))
        report.results.append(MethodResult(method="x", agrees=False))
        assert not report.all_agree
        assert "DISAGREES" in report.summary()

    def test_kwargs_forwarded(self):
        a = random_coo((30, 30), nnz=90, seed=5)
        report = cross_validate(
            a, a, [(1, 0)], methods=("sparta",), tile_size=8
        )
        assert report.all_agree
