"""Model-validation tests: the Section 5.1 density estimate against the
exact output structure."""

import pytest

from repro.analysis.density import (
    estimate_for_operands,
    exact_output_density,
)
from repro.core.plan import LinearizedOperand
from repro.data.random_tensors import random_operand_pair

import numpy as np


class TestExactDensity:
    def test_known_tiny_case(self):
        # L[0,0]=1, R[0,0]=1, R[0,1]=1 over C=1 -> output row 0 has 2 nnz.
        left = LinearizedOperand(
            np.array([0]), np.array([0]), np.array([1.0]), 2, 1
        )
        right = LinearizedOperand(
            np.array([0, 1]), np.array([0, 0]), np.array([1.0, 1.0]), 2, 1
        )
        assert exact_output_density(left, right) == pytest.approx(2 / 4)

    def test_no_overlap(self):
        left = LinearizedOperand(np.array([0]), np.array([0]), np.array([1.0]), 2, 4)
        right = LinearizedOperand(np.array([0]), np.array([3]), np.array([1.0]), 2, 4)
        assert exact_output_density(left, right) == 0.0

    def test_guard(self):
        left, right = random_operand_pair(
            100, 10, 100, density_l=0.5, density_r=0.5, seed=1
        )
        with pytest.raises(MemoryError):
            exact_output_density(left, right, max_pairs=10)


class TestEstimateAccuracy:
    @pytest.mark.parametrize("density", [0.01, 0.05, 0.15])
    def test_uniform_regime_accuracy(self, density):
        """On uniformly random inputs — the model's stated assumption —
        the estimate must land within ~25% of the truth."""
        left, right = random_operand_pair(
            120, 80, 120, density_l=density, density_r=density, seed=3
        )
        est = estimate_for_operands(left, right)
        exact = exact_output_density(left, right)
        assert est == pytest.approx(exact, rel=0.25)

    def test_estimate_never_exceeds_union_bound(self):
        left, right = random_operand_pair(
            60, 40, 60, density_l=0.1, density_r=0.1, seed=4
        )
        est = estimate_for_operands(left, right)
        assert 0.0 <= est <= 1.0

    def test_clustered_inputs_break_the_assumption(self):
        """Structured (clustered) inputs violate uniformity; the estimate
        may be off — document the direction: overlapping clusters produce
        *fewer* distinct output coordinates than the uniform model
        predicts is possible for the same nnz, i.e. exact <= ~est is not
        guaranteed, only that both remain valid probabilities."""
        from repro.data.random_tensors import clustered_coo
        from repro.core.plan import ContractionSpec

        t = clustered_coo((60, 50), nnz=600, seed=5, n_clusters=2, spread=0.02)
        spec = ContractionSpec(t.shape, t.shape, [(1, 1)])
        left = spec.linearize_left(t).sum_duplicates()
        right = spec.linearize_right(t).sum_duplicates()
        est = estimate_for_operands(left, right)
        exact = exact_output_density(left, right)
        assert 0.0 <= est <= 1.0
        assert 0.0 <= exact <= 1.0
        # With two tight clusters the structure concentrates: the exact
        # density deviates from the uniform estimate by a large factor.
        assert abs(exact - est) > 0.1 * max(exact, est)
