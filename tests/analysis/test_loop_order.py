"""Unit tests for the loop-order prediction glue."""

import pytest

from repro.analysis.loop_order import (
    SchemeCosts,
    measure_scheme,
    predicted_costs,
    predicted_tiled_co_costs,
    shape_of,
)
from repro.data.random_tensors import random_operand_pair


@pytest.fixture
def pair():
    return random_operand_pair(30, 25, 28, density_l=0.08, density_r=0.1, seed=9)


class TestPredictions:
    def test_shape_of(self, pair):
        left, right = pair
        s = shape_of(left, right)
        assert s.L == 30 and s.R == 28 and s.C == 25
        assert s.nnz_L == left.nnz and s.nnz_R == right.nnz

    def test_predicted_costs_keys(self, pair):
        preds = predicted_costs(*pair)
        assert set(preds) == {"ci", "cm", "co"}

    def test_tiled_prediction_interpolates(self, pair):
        left, right = pair
        untiled = predicted_costs(left, right)["co"]
        one_tile = predicted_tiled_co_costs(left, right, 30, 28)
        assert one_tile.queries == untiled.queries
        assert one_tile.data_volume == untiled.data_volume
        many = predicted_tiled_co_costs(left, right, 4, 4)
        assert many.queries > untiled.queries
        assert many.accumulator_cells == 16


class TestSchemeCosts:
    def test_ratios(self, pair):
        sc = measure_scheme("co", *pair)
        assert isinstance(sc, SchemeCosts)
        assert 0.0 < sc.query_ratio <= 1.01
        assert 0.0 < sc.volume_ratio <= 1.01

    def test_ci_ratios_below_one(self, pair):
        # CI predictions use full extents; measurements use nonzero
        # slices, so the ratio is well under 1 on sparse problems.
        sc = measure_scheme("ci", *pair)
        assert sc.volume_ratio < 1.0
