"""Unit tests for access-trace recording and cache replay."""

import numpy as np
import pytest

from repro.analysis.trace import TraceRecorder, replay_miss_rate


class TestTraceRecorder:
    def test_records_in_order(self):
        rec = TraceRecorder()
        rec.record(np.array([1, 2]))
        rec.record(np.array([3]))
        np.testing.assert_array_equal(rec.positions(), [1, 2, 3])
        assert rec.recorded == 3
        assert rec.seen == 3

    def test_max_len_cap(self):
        rec = TraceRecorder(max_len=5)
        rec.record(np.arange(10))
        assert rec.recorded == 5
        assert rec.seen == 10
        rec.record(np.arange(3))  # ignored, already full
        assert rec.recorded == 5
        assert rec.seen == 13

    def test_subsampling_global_stride(self):
        rec = TraceRecorder(sample_every=3)
        rec.record(np.arange(0, 4))   # global offsets 0..3 -> keep 0, 3
        rec.record(np.arange(10, 15))  # offsets 4..8 -> keep 6 (val 12)
        got = rec.positions()
        np.testing.assert_array_equal(got, [0, 3, 12])

    def test_empty_batches(self):
        rec = TraceRecorder()
        rec.record(np.empty(0, dtype=np.int64))
        assert rec.positions().size == 0

    def test_reset(self):
        rec = TraceRecorder()
        rec.record(np.array([1]))
        rec.reset()
        assert rec.recorded == 0
        assert rec.positions().size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_len=0)
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)

    def test_copies_input(self):
        rec = TraceRecorder()
        src = np.array([1, 2, 3])
        rec.record(src)
        src[:] = 0
        np.testing.assert_array_equal(rec.positions(), [1, 2, 3])


class TestReplay:
    def test_empty(self):
        assert replay_miss_rate(np.empty(0), cache_bytes=4096) == 0.0

    def test_resident_trace_hits(self, rng):
        positions = rng.integers(0, 64, size=5000)  # 512 B working set
        rate = replay_miss_rate(positions, cache_bytes=64 * 1024)
        assert rate < 0.05

    def test_streaming_trace_misses(self, rng):
        positions = rng.integers(0, 1 << 22, size=5000)
        rate = replay_miss_rate(positions, cache_bytes=8 * 1024)
        assert rate > 0.9

    def test_truncation(self, rng):
        positions = rng.integers(0, 100, size=10_000)
        # Must not blow up on long traces.
        replay_miss_rate(positions, cache_bytes=4096, max_accesses=1000)


class TestKernelIntegration:
    def test_tiled_kernel_records_trace(self):
        from repro.analysis.trace import TraceRecorder
        from repro.core.model import choose_plan
        from repro.core.plan import ContractionSpec
        from repro.core.tiled_co import tiled_co_contract
        from repro.data.random_tensors import random_operand_pair
        from repro.machine.specs import DESKTOP

        left, right = random_operand_pair(
            40, 30, 40, density_l=0.1, density_r=0.1, seed=5
        )
        spec = ContractionSpec((40, 30), (30, 40), [(1, 0)])
        plan = choose_plan(spec, left.nnz, right.nnz, DESKTOP, tile_size=16)
        rec = TraceRecorder()
        from repro.analysis.counters import Counters

        c = Counters()
        tiled_co_contract(left, right, plan, counters=c, trace=rec)
        # Every accumulator update was offered to the recorder.
        assert rec.seen == c.accum_updates
        # Positions are intra-tile: bounded by the tile area.
        assert rec.positions().max() < 16 * 16

    def test_untiled_co_records_trace(self):
        from repro.analysis.trace import TraceRecorder
        from repro.baselines.schemes import co_contract
        from repro.data.random_tensors import random_operand_pair

        left, right = random_operand_pair(
            40, 30, 40, density_l=0.1, density_r=0.1, seed=6
        )
        rec = TraceRecorder()
        co_contract(left, right, workspace="dense", trace=rec)
        # Positions span the full L*R workspace.
        assert rec.positions().max() < 40 * 40
        assert rec.seen > 0
