"""Unit tests for the counters."""

from repro.analysis.counters import Counters, ensure_counters, merge_snapshots


class TestCounters:
    def test_defaults_zero(self):
        c = Counters()
        assert c.hash_queries == 0
        assert c.snapshot()["data_volume"] == 0

    def test_note_workspace_keeps_peak(self):
        c = Counters()
        c.note_workspace(100)
        c.note_workspace(50)
        assert c.workspace_cells == 100

    def test_merge_sums_and_peaks(self):
        a = Counters(hash_queries=5, workspace_cells=10)
        b = Counters(hash_queries=3, workspace_cells=20)
        a.merge(b)
        assert a.hash_queries == 8
        assert a.workspace_cells == 20

    def test_merge_returns_self(self):
        a = Counters()
        assert a.merge(Counters()) is a

    def test_reset(self):
        c = Counters(probes=9)
        c.reset()
        assert c.probes == 0

    def test_ensure_counters_passthrough(self):
        c = Counters()
        assert ensure_counters(c) is c

    def test_ensure_counters_fresh(self):
        c = ensure_counters(None)
        assert isinstance(c, Counters)
        assert ensure_counters(None) is not c


class TestMergeSnapshots:
    """Dict-level merge used for cross-process (serialized) counters."""

    def test_sums_and_peaks_match_live_merge(self):
        a = Counters(hash_queries=5, probes=2, workspace_cells=10)
        b = Counters(hash_queries=3, probes=7, workspace_cells=20)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged == a.merge(b).snapshot()

    def test_associative_and_commutative(self):
        snaps = [
            Counters(hash_queries=1, workspace_cells=5).snapshot(),
            Counters(data_volume=9, workspace_cells=50).snapshot(),
            Counters(probes=4, workspace_cells=2).snapshot(),
        ]
        a, b, c = snaps
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_missing_keys_treated_as_zero(self):
        full = Counters(hash_queries=4).snapshot()
        merged = merge_snapshots(full, {"hash_queries": 1})
        assert merged["hash_queries"] == 5
        assert merged["probes"] == 0

    def test_inputs_not_mutated(self):
        a = Counters(hash_queries=2).snapshot()
        b = Counters(hash_queries=3).snapshot()
        merge_snapshots(a, b)
        assert a["hash_queries"] == 2
        assert b["hash_queries"] == 3
