"""Unit tests for the counters."""

from repro.analysis.counters import Counters, ensure_counters


class TestCounters:
    def test_defaults_zero(self):
        c = Counters()
        assert c.hash_queries == 0
        assert c.snapshot()["data_volume"] == 0

    def test_note_workspace_keeps_peak(self):
        c = Counters()
        c.note_workspace(100)
        c.note_workspace(50)
        assert c.workspace_cells == 100

    def test_merge_sums_and_peaks(self):
        a = Counters(hash_queries=5, workspace_cells=10)
        b = Counters(hash_queries=3, workspace_cells=20)
        a.merge(b)
        assert a.hash_queries == 8
        assert a.workspace_cells == 20

    def test_merge_returns_self(self):
        a = Counters()
        assert a.merge(Counters()) is a

    def test_reset(self):
        c = Counters(probes=9)
        c.reset()
        assert c.probes == 0

    def test_ensure_counters_passthrough(self):
        c = Counters()
        assert ensure_counters(c) is c

    def test_ensure_counters_fresh(self):
        c = ensure_counters(None)
        assert isinstance(c, Counters)
        assert ensure_counters(None) is not c
