"""Unit tests for the report renderers."""

import pytest

from repro.analysis.reporting import format_value, render_series, render_table, speedup


class TestFormatValue:
    def test_plain_int(self):
        assert format_value(42) == "42"

    def test_float_precision(self):
        assert format_value(1.23456) == "1.235"

    def test_large_float_engineering(self):
        assert "e" in format_value(1.5e7) or "+" in format_value(1.5e7)

    def test_inf_is_dnf(self):
        assert format_value(float("inf")) == "DNF"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_width_padding(self):
        assert format_value(1, width=5) == "    1"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_row_width_check(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_pairs(self):
        out = render_series("s", [1, 2], [10.0, 20.0])
        assert "series: s" in out
        assert len(out.splitlines()) == 3


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_guard(self):
        assert speedup(1.0, 0.0) == float("inf")
