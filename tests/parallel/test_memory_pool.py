"""Unit tests for the chunked COO builder (memory pool)."""

import numpy as np
import pytest

from repro.parallel.memory_pool import COOBuilder


def batch(n, offset=0):
    l = np.arange(offset, offset + n, dtype=np.int64)
    return l, l + 1, l.astype(np.float64) * 0.5


class TestAppend:
    def test_single_batch(self):
        b = COOBuilder(chunk_rows=16)
        b.append_batch(*batch(5))
        l, r, v = b.finalize()
        np.testing.assert_array_equal(l, np.arange(5))
        np.testing.assert_array_equal(r, np.arange(5) + 1)

    def test_spill_across_chunks(self):
        b = COOBuilder(chunk_rows=4)
        b.append_batch(*batch(10))
        assert b.stats.chunks_allocated == 3
        l, r, v = b.finalize()
        np.testing.assert_array_equal(l, np.arange(10))

    def test_batch_larger_than_chunk(self):
        b = COOBuilder(chunk_rows=3)
        b.append_batch(*batch(20))
        l, _, _ = b.finalize()
        assert l.shape[0] == 20
        np.testing.assert_array_equal(l, np.arange(20))

    def test_many_small_appends(self):
        b = COOBuilder(chunk_rows=8)
        for i in range(50):
            b.append_batch(*batch(1, offset=i))
        l, _, v = b.finalize()
        np.testing.assert_array_equal(l, np.arange(50))
        assert b.stats.rows_appended == 50
        assert b.stats.append_calls == 50

    def test_empty_append(self):
        b = COOBuilder()
        b.append_batch(*batch(0))
        l, r, v = b.finalize()
        assert l.size == 0

    def test_mismatched_lengths(self):
        b = COOBuilder()
        with pytest.raises(ValueError):
            b.append_batch(np.arange(3), np.arange(2), np.arange(3, dtype=float))

    def test_bad_chunk_rows(self):
        with pytest.raises(ValueError):
            COOBuilder(chunk_rows=0)

    def test_rows_property(self):
        b = COOBuilder(chunk_rows=4)
        b.append_batch(*batch(7))
        assert b.rows == 7


class TestChunkAccounting:
    def test_exact_fill_allocates_lazily(self):
        # Filling a chunk exactly must not allocate an extra empty chunk.
        b = COOBuilder(chunk_rows=4)
        b.append_batch(*batch(4))
        assert b.stats.chunks_allocated == 1
        b.append_batch(*batch(1))
        assert b.stats.chunks_allocated == 2

    def test_amortized_one_allocation_per_chunk(self):
        b = COOBuilder(chunk_rows=100)
        for _ in range(10):
            b.append_batch(*batch(95))
        assert b.stats.chunks_allocated == 10  # ceil(950 / 100)


class TestMerge:
    def test_merge_preserves_all_rows(self):
        builders = []
        for w in range(4):
            b = COOBuilder(chunk_rows=8)
            b.append_batch(*batch(10, offset=100 * w))
            builders.append(b)
        l, r, v = COOBuilder.merge(builders)
        assert l.shape[0] == 40
        assert set(l.tolist()) == {100 * w + i for w in range(4) for i in range(10)}

    def test_merge_empty_builders(self):
        l, r, v = COOBuilder.merge([COOBuilder(), COOBuilder()])
        assert l.size == 0

    def test_merge_mixed(self):
        a = COOBuilder()
        a.append_batch(*batch(3))
        l, _, _ = COOBuilder.merge([a, COOBuilder()])
        assert l.shape[0] == 3
