"""Unit tests for the dynamic task queue."""

import threading
import time

import pytest

from repro.errors import SchedulerError
from repro.parallel.taskqueue import TaskQueue


class TestInline:
    def test_runs_all_tasks(self):
        results = []
        tasks = [lambda i=i: results.append(i) or i for i in range(5)]
        records = TaskQueue(1).run(tasks)
        assert results == list(range(5))
        assert [r.result for r in records] == list(range(5))

    def test_records_ordered_by_task_id(self):
        records = TaskQueue(1).run([lambda i=i: i for i in range(4)])
        assert [r.task_id for r in records] == [0, 1, 2, 3]

    def test_cost_positive(self):
        records = TaskQueue(1).run([lambda: time.sleep(0.005)])
        assert records[0].cost >= 0.004

    def test_empty_task_list(self):
        assert TaskQueue(1).run([]) == []

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            TaskQueue(1).run([boom])


class TestThreaded:
    def test_all_tasks_complete(self):
        done = []
        lock = threading.Lock()

        def make(i):
            def task():
                with lock:
                    done.append(i)
                return i

            return task

        records = TaskQueue(4).run([make(i) for i in range(50)])
        assert sorted(done) == list(range(50))
        assert sorted(r.result for r in records) == list(range(50))

    def test_uses_multiple_workers(self):
        workers = set()
        lock = threading.Lock()

        def task():
            with lock:
                workers.add(threading.get_ident())
            time.sleep(0.01)

        TaskQueue(4).run([task] * 16)
        assert len(workers) >= 2

    def test_exception_propagates_and_stops(self):
        ran = []
        lock = threading.Lock()

        def good(i):
            def t():
                with lock:
                    ran.append(i)
                time.sleep(0.001)

            return t

        def boom():
            raise ValueError("threaded boom")

        with pytest.raises(ValueError, match="threaded boom"):
            TaskQueue(2).run([boom] + [good(i) for i in range(200)])
        # The queue abandons remaining work after a failure.
        assert len(ran) < 200

    def test_more_workers_than_tasks(self):
        records = TaskQueue(8).run([lambda: 1, lambda: 2])
        assert sorted(r.result for r in records) == [1, 2]

    def test_worker_ids_recorded(self):
        records = TaskQueue(3).run([lambda: None] * 9)
        assert all(0 <= r.worker < 3 for r in records)


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(SchedulerError):
            TaskQueue(0)
