"""Unit and property tests for the dynamic-scheduling simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.parallel.scheduler_sim import scaling_curve, simulate_dynamic_schedule


class TestBasics:
    def test_single_worker_is_sum(self):
        costs = [1.0, 2.0, 3.0]
        r = simulate_dynamic_schedule(costs, 1)
        assert r.makespan == pytest.approx(6.0)
        assert r.efficiency == pytest.approx(1.0)

    def test_perfect_split(self):
        r = simulate_dynamic_schedule([1.0] * 8, 4)
        assert r.makespan == pytest.approx(2.0)
        assert r.efficiency == pytest.approx(1.0)

    def test_heavy_task_bounds_makespan(self):
        # One task of 10 dominates no matter how many workers.
        r = simulate_dynamic_schedule([10.0] + [0.1] * 50, 64)
        assert r.makespan == pytest.approx(10.0, rel=0.01)

    def test_fewer_tasks_than_workers(self):
        r = simulate_dynamic_schedule([2.0, 3.0], 8)
        assert r.makespan == pytest.approx(3.0)

    def test_empty_tasks(self):
        r = simulate_dynamic_schedule([], 4)
        assert r.makespan == 0.0
        assert r.efficiency == 1.0

    def test_assignment_valid(self):
        r = simulate_dynamic_schedule([1.0] * 10, 3)
        assert set(r.assignment.tolist()) <= {0, 1, 2}
        assert r.worker_loads.sum() == pytest.approx(10.0)

    def test_dynamic_order_matters(self):
        # Greedy dynamic scheduling takes tasks in order: a trailing heavy
        # task yields a worse makespan than a leading one (no lookahead).
        lead = simulate_dynamic_schedule([8.0] + [1.0] * 8, 2)
        trail = simulate_dynamic_schedule([1.0] * 8 + [8.0], 2)
        assert lead.makespan <= trail.makespan

    def test_validation(self):
        with pytest.raises(SchedulerError):
            simulate_dynamic_schedule([1.0], 0)
        with pytest.raises(SchedulerError):
            simulate_dynamic_schedule([-1.0], 2)
        with pytest.raises(SchedulerError):
            simulate_dynamic_schedule(np.ones((2, 2)), 2)


class TestScalingCurve:
    def test_monotone_nonincreasing(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(0.5, 2.0, size=200)
        curve = scaling_curve(costs, [1, 2, 4, 8, 16])
        times = list(curve.values())
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))

    def test_serial_overhead_floors_speedup(self):
        costs = [1.0] * 64
        curve = scaling_curve(costs, [1, 64], serial_overhead=10.0)
        speedup = curve[1] / curve[64]
        assert speedup < 7.0  # Amdahl bound: 74/11

    def test_per_thread_overhead_can_invert(self):
        costs = [0.01] * 4
        curve = scaling_curve(costs, [1, 64], per_thread_overhead=0.01)
        assert curve[64] > curve[1]


class TestStaticSchedule:
    def test_block_assignment(self):
        from repro.parallel.scheduler_sim import simulate_static_schedule

        r = simulate_static_schedule([1.0] * 8, 4, policy="block")
        np.testing.assert_array_equal(r.assignment, [0, 0, 1, 1, 2, 2, 3, 3])
        assert r.makespan == pytest.approx(2.0)

    def test_cyclic_assignment(self):
        from repro.parallel.scheduler_sim import simulate_static_schedule

        r = simulate_static_schedule([1.0] * 8, 4, policy="cyclic")
        np.testing.assert_array_equal(r.assignment, [0, 1, 2, 3, 0, 1, 2, 3])

    def test_dynamic_beats_static_on_skewed_costs(self):
        """The paper's Section 4.2 claim: run-time mapping keeps load
        imbalance lower than static partitioning for skewed task costs."""
        from repro.parallel.scheduler_sim import (
            simulate_dynamic_schedule,
            simulate_static_schedule,
        )

        rng = np.random.default_rng(7)
        # Heavy-tailed tile costs: a few tiles dominate.
        costs = rng.pareto(1.5, size=200) + 0.01
        for policy in ("block", "cyclic"):
            static = simulate_static_schedule(costs, 8, policy=policy)
            dynamic = simulate_dynamic_schedule(costs, 8)
            assert dynamic.makespan <= static.makespan + 1e-12
        # And strictly better for at least the block policy.
        block = simulate_static_schedule(costs, 8, policy="block")
        assert simulate_dynamic_schedule(costs, 8).makespan < block.makespan

    def test_empty(self):
        from repro.parallel.scheduler_sim import simulate_static_schedule

        assert simulate_static_schedule([], 4).makespan == 0.0

    def test_validation(self):
        from repro.parallel.scheduler_sim import simulate_static_schedule

        with pytest.raises(SchedulerError):
            simulate_static_schedule([1.0], 2, policy="random")
        with pytest.raises(SchedulerError):
            simulate_static_schedule([1.0], 0)


class TestWorkStealing:
    def test_single_worker_is_sum(self):
        from repro.parallel.scheduler_sim import simulate_work_stealing

        r = simulate_work_stealing([1.0, 2.0, 3.0], 1)
        assert r.makespan == pytest.approx(6.0)

    def test_empty(self):
        from repro.parallel.scheduler_sim import simulate_work_stealing

        assert simulate_work_stealing([], 4).makespan == 0.0

    def test_all_tasks_run_once(self):
        from repro.parallel.scheduler_sim import simulate_work_stealing

        rng = np.random.default_rng(2)
        costs = rng.uniform(0.1, 1.0, 50)
        r = simulate_work_stealing(costs, 6)
        assert (r.assignment >= 0).all()
        assert r.worker_loads.sum() >= costs.sum() - 1e-9

    def test_stealing_balances_skewed_deal(self):
        from repro.parallel.scheduler_sim import simulate_work_stealing

        # Round-robin dealing puts all heavy tasks on worker 0's deque
        # positions; stealing must still approach the balance bound.
        costs = [1.0] * 64
        r = simulate_work_stealing(costs, 8)
        assert r.makespan == pytest.approx(8.0, rel=0.05)

    def test_close_to_shared_queue(self):
        from repro.parallel.scheduler_sim import (
            simulate_dynamic_schedule,
            simulate_work_stealing,
        )

        rng = np.random.default_rng(3)
        costs = rng.uniform(0.05, 2.0, 300)
        for k in (4, 16, 64):
            shared = simulate_dynamic_schedule(costs, k).makespan
            stealing = simulate_work_stealing(costs, k).makespan
            assert stealing <= shared + 2.0  # within one max task
            assert stealing >= costs.sum() / k - 1e-9

    def test_steal_overhead_counted(self):
        from repro.parallel.scheduler_sim import simulate_work_stealing

        costs = [1.0] * 16
        free = simulate_work_stealing(costs, 4, steal_overhead=0.0)
        taxed = simulate_work_stealing(costs, 4, steal_overhead=0.5)
        assert taxed.makespan >= free.makespan

    def test_validation(self):
        from repro.parallel.scheduler_sim import simulate_work_stealing

        with pytest.raises(SchedulerError):
            simulate_work_stealing([1.0], 0)
        with pytest.raises(SchedulerError):
            simulate_work_stealing([-1.0], 2)


@settings(max_examples=60, deadline=None)
@given(
    costs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60),
    workers=st.integers(1, 16),
)
def test_invariants(costs, workers):
    """Properties: work conservation and the greedy makespan bounds."""
    r = simulate_dynamic_schedule(costs, workers)
    total = sum(costs)
    assert r.total_work == pytest.approx(total)
    # Lower bounds: critical path (max task) and perfect balance.
    assert r.makespan >= max(costs) - 1e-9
    assert r.makespan >= total / workers - 1e-9
    # Graham's bound for greedy list scheduling.
    assert r.makespan <= total / workers + max(costs) + 1e-9
