"""Unit and property tests for the SliceTable grouped map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import Counters
from repro.hashing.slice_table import SliceTable


def build(keys, idx, values, **kw):
    return SliceTable(
        np.array(keys, dtype=np.int64),
        np.array(idx, dtype=np.int64),
        np.array(values, dtype=np.float64),
        **kw,
    )


class TestBasics:
    def test_grouping(self):
        t = build([2, 1, 2, 1, 3], [0, 1, 2, 3, 4], [1, 2, 3, 4, 5])
        assert t.num_keys == 3
        np.testing.assert_array_equal(t.keys(), [1, 2, 3])
        idx, vals = t.get(2)
        assert sorted(idx.tolist()) == [0, 2]
        assert sorted(vals.tolist()) == [1.0, 3.0]

    def test_missing_key_empty(self):
        t = build([1], [0], [1.0])
        idx, vals = t.get(99)
        assert idx.size == 0 and vals.size == 0

    def test_empty_table(self):
        t = build([], [], [])
        assert t.num_keys == 0
        assert t.nnz == 0
        found, starts, counts = t.query_batch(np.array([1, 2], dtype=np.int64))
        assert not found.any()

    def test_group_sizes(self):
        t = build([5, 5, 5, 7], [0, 1, 2, 3], [1, 1, 1, 1])
        np.testing.assert_array_equal(t.group_sizes(), [3, 1])

    def test_contains(self):
        t = build([4], [0], [1.0])
        assert 4 in t
        assert 5 not in t

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            build([1, 2], [0], [1.0, 2.0])


class TestQueryBatch:
    def test_spans_slice_payload(self):
        t = build([1, 2, 2, 3], [10, 20, 21, 30], [1, 2, 3, 4])
        found, starts, counts = t.query_batch(np.array([2, 9], dtype=np.int64))
        assert found.tolist() == [True, False]
        idx, vals = t.payload
        s, c = int(starts[0]), int(counts[0])
        assert sorted(idx[s : s + c].tolist()) == [20, 21]
        assert counts[1] == 0

    def test_spans_for_all_keys_cover_payload(self):
        t = build([3, 1, 3, 1, 1], [0, 1, 2, 3, 4], [1, 1, 1, 1, 1])
        starts, counts = t.spans_for_all_keys()
        assert counts.sum() == t.nnz
        assert starts[0] == 0

    def test_queries_counted(self):
        c = Counters()
        t = build([1, 2], [0, 1], [1.0, 2.0], counters=c)
        base = c.hash_queries
        t.query_batch(np.array([1, 2, 3], dtype=np.int64))
        assert c.hash_queries == base + 3


@settings(max_examples=60, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 30), st.floats(-5, 5)),
        max_size=60,
    )
)
def test_matches_grouped_dict_model(entries):
    """Property: each key's slice equals the inserted group (as multisets)."""
    keys = [k for k, _, _ in entries]
    idx = [i for _, i, _ in entries]
    vals = [v for _, _, v in entries]
    t = build(keys, idx, vals)

    model: dict[int, list[tuple[int, float]]] = {}
    for k, i, v in entries:
        model.setdefault(k, []).append((i, v))

    assert t.num_keys == len(model)
    assert t.nnz == len(entries)
    for k in range(16):
        got_idx, got_vals = t.get(k)
        got = sorted(zip(got_idx.tolist(), got_vals.tolist()))
        expected = sorted(model.get(k, []))
        assert got == pytest.approx(expected)


class TestCountersIntegration:
    def test_probes_counted_on_construction(self):
        from repro.analysis.counters import Counters

        c = Counters()
        build(list(range(200)), list(range(200)), [1.0] * 200, counters=c)
        assert c.probes > 0  # the lookup table's inserts probe

    def test_payload_views_not_copies(self):
        t = build([1, 1, 2], [10, 11, 20], [1.0, 2.0, 3.0])
        idx, vals = t.payload
        idx2, vals2 = t.payload
        assert idx is idx2 and vals is vals2
