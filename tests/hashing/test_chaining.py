"""Unit and property tests for the chaining multimap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import Counters
from repro.hashing.chaining import ChainingMultiMap


class TestBasics:
    def test_empty(self):
        m = ChainingMultiMap()
        assert len(m) == 0
        q, k, v = m.get_all_batch(np.array([1, 2]))
        assert q.size == 0

    def test_single_insert_lookup(self):
        m = ChainingMultiMap()
        m.insert_batch(np.array([5]), np.array([2.5]))
        q, k, v = m.get_all_batch(np.array([5]))
        np.testing.assert_array_equal(k, [5])
        np.testing.assert_array_equal(v, [2.5])

    def test_duplicate_keys_kept(self):
        m = ChainingMultiMap()
        m.insert_batch(np.array([3, 3, 3]), np.array([1.0, 2.0, 3.0]))
        q, k, v = m.get_all_batch(np.array([3]))
        assert sorted(v.tolist()) == [1.0, 2.0, 3.0]
        assert len(m) == 3

    def test_query_index_alignment(self):
        m = ChainingMultiMap()
        m.insert_batch(np.array([1, 2, 2]), np.array([10.0, 20.0, 21.0]))
        q, k, v = m.get_all_batch(np.array([2, 1, 9]))
        # query 0 -> key 2 (two matches), query 1 -> key 1, query 2 -> none
        assert sorted(v[q == 0].tolist()) == [20.0, 21.0]
        assert v[q == 1].tolist() == [10.0]
        assert (q == 2).sum() == 0

    def test_multi_batch_inserts(self):
        m = ChainingMultiMap(num_buckets=8)
        m.insert_batch(np.array([1, 2]), np.array([1.0, 2.0]))
        m.insert_batch(np.array([1, 3]), np.array([1.5, 3.0]))
        q, k, v = m.get_all_batch(np.array([1]))
        assert sorted(v.tolist()) == [1.0, 1.5]

    def test_mismatched_lengths(self):
        m = ChainingMultiMap()
        with pytest.raises(ValueError):
            m.insert_batch(np.array([1]), np.array([1.0, 2.0]))

    def test_empty_insert_noop(self):
        m = ChainingMultiMap()
        m.insert_batch(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(m) == 0

    def test_int_value_dtype(self):
        m = ChainingMultiMap(value_dtype=np.int64)
        m.insert_batch(np.array([7]), np.array([99]))
        _, _, v = m.get_all_batch(np.array([7]))
        assert v.dtype == np.int64
        assert v[0] == 99

    def test_items_insertion_order(self):
        m = ChainingMultiMap()
        m.insert_batch(np.array([9, 1]), np.array([9.0, 1.0]))
        k, v = m.items()
        np.testing.assert_array_equal(k, [9, 1])


class TestChainBehaviour:
    def test_chain_lengths_sum(self):
        m = ChainingMultiMap(num_buckets=16)
        m.insert_batch(np.arange(100, dtype=np.int64), np.ones(100))
        assert m.chain_lengths().sum() == 100

    def test_overload_grows_chains(self):
        # Fixed bucket count: chains grow with load (Sparta's trade-off).
        m = ChainingMultiMap(num_buckets=8)
        m.insert_batch(np.arange(256, dtype=np.int64), np.ones(256))
        assert m.chain_lengths().max() >= 256 / 8

    def test_probe_counter_tracks_chain_walks(self):
        c = Counters()
        m = ChainingMultiMap(num_buckets=8, counters=c)
        m.insert_batch(np.arange(64, dtype=np.int64), np.ones(64))
        c.probes = 0
        m.get_all_batch(np.arange(64, dtype=np.int64))
        # Walking 64 chains of average length 8 costs >> 64 probes.
        assert c.probes > 128

    def test_all_colliding_hash_correct(self):
        def bad_hash(keys):
            return np.zeros(np.asarray(keys).shape, dtype=np.uint64)

        m = ChainingMultiMap(num_buckets=8, hash_fn=bad_hash)
        m.insert_batch(np.arange(50, dtype=np.int64), np.arange(50, dtype=float))
        q, k, v = m.get_all_batch(np.arange(50, dtype=np.int64))
        assert q.shape[0] == 50
        np.testing.assert_array_equal(np.sort(k), np.arange(50))


@settings(max_examples=50, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.tuples(st.integers(0, 40), st.integers(-5, 5)), max_size=25),
        max_size=6,
    ),
    queries=st.lists(st.integers(0, 50), max_size=20),
)
def test_matches_multimap_model(batches, queries):
    """Property: lookups return exactly the inserted multiset per key."""
    m = ChainingMultiMap(num_buckets=8)
    model: dict[int, list[float]] = {}
    for batch in batches:
        if not batch:
            continue
        keys = np.array([k for k, _ in batch], dtype=np.int64)
        values = np.array([float(v) for _, v in batch])
        m.insert_batch(keys, values)
        for k, v in batch:
            model.setdefault(k, []).append(float(v))
    q, k, v = m.get_all_batch(np.array(queries, dtype=np.int64))
    for qi, query_key in enumerate(queries):
        got = sorted(v[q == qi].tolist())
        expected = sorted(model.get(query_key, []))
        assert got == expected
