"""Unit and property tests for the open-addressing map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.counters import Counters
from repro.hashing.open_addressing import OpenAddressingMap


class TestBasics:
    def test_empty(self):
        m = OpenAddressingMap()
        assert len(m) == 0
        assert 5 not in m

    def test_scalar_set_get(self):
        m = OpenAddressingMap()
        m[7] = 3.5
        assert m[7] == 3.5
        assert 7 in m

    def test_missing_key_raises(self):
        m = OpenAddressingMap()
        with pytest.raises(KeyError):
            m[42]

    def test_set_overwrites(self):
        m = OpenAddressingMap()
        m[1] = 1.0
        m[1] = 2.0
        assert m[1] == 2.0
        assert len(m) == 1

    def test_upsert_adds(self):
        m = OpenAddressingMap()
        m.upsert_batch(np.array([3, 3, 5]), np.array([1.0, 2.0, 4.0]))
        assert m[3] == 3.0
        assert m[5] == 4.0

    def test_get_batch_defaults(self):
        m = OpenAddressingMap()
        m[1] = 9.0
        values, found = m.get_batch(np.array([1, 2]), default=-1.0)
        np.testing.assert_array_equal(values, [9.0, -1.0])
        np.testing.assert_array_equal(found, [True, False])

    def test_empty_batches_noop(self):
        m = OpenAddressingMap()
        m.upsert_batch(np.empty(0, dtype=np.int64), np.empty(0))
        m.set_batch(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(m) == 0

    def test_negative_key_rejected(self):
        m = OpenAddressingMap()
        with pytest.raises(ValueError):
            m.upsert_batch(np.array([-1]), np.array([1.0]))

    def test_length_mismatch_rejected(self):
        m = OpenAddressingMap()
        with pytest.raises(ValueError):
            m.upsert_batch(np.array([1, 2]), np.array([1.0]))

    def test_set_batch_last_duplicate_wins(self):
        m = OpenAddressingMap()
        m.set_batch(np.array([4, 4, 4]), np.array([1.0, 2.0, 3.0]))
        assert m[4] == 3.0

    def test_int_values(self):
        m = OpenAddressingMap(value_dtype=np.int64)
        m.set_batch(np.array([10, 20]), np.array([100, 200]))
        values, found = m.get_batch(np.array([10, 20, 30]))
        assert values.dtype == np.int64
        np.testing.assert_array_equal(values[:2], [100, 200])

    def test_bad_load_factor(self):
        with pytest.raises(ValueError):
            OpenAddressingMap(max_load=1.5)


class TestResize:
    def test_grows_past_initial_capacity(self):
        m = OpenAddressingMap(initial_capacity=8)
        keys = np.arange(1000, dtype=np.int64)
        m.upsert_batch(keys, np.ones(1000))
        assert len(m) == 1000
        assert m.capacity >= 1000 / m.max_load
        values, found = m.get_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(values, np.ones(1000))

    def test_resize_counted(self):
        c = Counters()
        m = OpenAddressingMap(initial_capacity=8, counters=c)
        m.upsert_batch(np.arange(500, dtype=np.int64), np.ones(500))
        assert c.resizes >= 1

    def test_load_factor_bounded(self):
        m = OpenAddressingMap(initial_capacity=8, max_load=0.7)
        for start in range(0, 2000, 100):
            m.upsert_batch(
                np.arange(start, start + 100, dtype=np.int64), np.ones(100)
            )
            assert m.load_factor <= 0.7 + 1e-9


class TestAdversarial:
    def test_all_colliding_hash(self):
        # A constant hash degenerates to a linear scan but must stay correct.
        def bad_hash(keys):
            return np.zeros(np.asarray(keys).shape, dtype=np.uint64)

        m = OpenAddressingMap(hash_fn=bad_hash)
        keys = np.arange(200, dtype=np.int64)
        m.upsert_batch(keys, keys.astype(np.float64))
        values, found = m.get_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(values, keys.astype(np.float64))

    def test_probe_counter_grows_under_collisions(self):
        def bad_hash(keys):
            return np.zeros(np.asarray(keys).shape, dtype=np.uint64)

        good = Counters()
        bad = Counters()
        keys = np.arange(300, dtype=np.int64)
        OpenAddressingMap(counters=good).upsert_batch(keys, np.ones(300))
        OpenAddressingMap(hash_fn=bad_hash, counters=bad).upsert_batch(
            keys, np.ones(300)
        )
        assert bad.probes > 5 * good.probes

    def test_interleaved_upsert_lookup(self, rng):
        m = OpenAddressingMap(initial_capacity=8)
        model: dict[int, float] = {}
        for _ in range(20):
            keys = rng.integers(0, 50, size=30)
            values = rng.random(30)
            m.upsert_batch(keys, values)
            for k, v in zip(keys.tolist(), values.tolist()):
                model[k] = model.get(k, 0.0) + v
            got, found = m.get_batch(np.array(sorted(model)))
            assert found.all()
            np.testing.assert_allclose(got, [model[k] for k in sorted(model)])

    def test_items_sorted(self):
        m = OpenAddressingMap()
        m.set_batch(np.array([30, 10, 20]), np.array([3.0, 1.0, 2.0]))
        keys, values = m.items_sorted()
        np.testing.assert_array_equal(keys, [10, 20, 30])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])


class TestQuadraticProbing:
    def test_correctness_parity_with_linear(self, rng):
        lin = OpenAddressingMap(8, probing="linear")
        quad = OpenAddressingMap(8, probing="quadratic")
        for _ in range(10):
            keys = rng.integers(0, 300, size=50)
            values = rng.random(50)
            lin.upsert_batch(keys, values)
            quad.upsert_batch(keys, values)
        assert lin.to_dict() == pytest.approx(quad.to_dict())

    def test_visits_all_slots_under_constant_hash(self):
        # Triangular quadratic probing over a power-of-two capacity is a
        # complete probe sequence: even an all-colliding hash terminates.
        def bad_hash(keys):
            return np.zeros(np.asarray(keys).shape, dtype=np.uint64)

        m = OpenAddressingMap(8, probing="quadratic", hash_fn=bad_hash)
        keys = np.arange(100, dtype=np.int64)
        m.upsert_batch(keys, keys.astype(np.float64))
        values, found = m.get_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(values, keys.astype(np.float64))

    def test_quadratic_reduces_clustered_probes(self):
        # Keys pre-hashed into one dense run (identity hash, sequential
        # keys): linear probing suffers primary clustering on *misses*,
        # quadratic escapes the cluster faster.
        from repro.hashing.hash_functions import identity_hash

        keys = np.arange(3000, dtype=np.int64)  # one contiguous cluster
        # Absent keys that hash *into* the cluster (identity & mask wraps
        # 8192+i back onto slot i): linear probing must walk to the
        # cluster's end, quadratic escapes in O(sqrt(cluster)) steps.
        miss_queries = np.arange(8192, 8192 + 3000, dtype=np.int64)
        probes = {}
        for probing in ("linear", "quadratic"):
            c = Counters()
            m = OpenAddressingMap(
                8192, probing=probing, hash_fn=identity_hash, counters=c
            )
            m.upsert_batch(keys, np.ones(3000))
            c.probes = 0
            m.get_batch(miss_queries)
            probes[probing] = c.probes
        assert probes["quadratic"] < probes["linear"]

    def test_invalid_probing(self):
        with pytest.raises(ValueError):
            OpenAddressingMap(probing="cubic")


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.lists(st.integers(0, 200), min_size=0, max_size=20),
            st.booleans(),  # True: upsert, False: set
        ),
        max_size=12,
    )
)
def test_matches_dict_model(ops):
    """Property: the table behaves exactly like a Python dict model."""
    m = OpenAddressingMap(initial_capacity=8)
    model: dict[int, float] = {}
    for i, (key_list, is_upsert) in enumerate(ops):
        keys = np.array(key_list, dtype=np.int64)
        values = (keys % 7 + i).astype(np.float64)
        if is_upsert:
            m.upsert_batch(keys, values)
            for k, v in zip(key_list, values.tolist()):
                model[k] = model.get(k, 0.0) + v
        else:
            m.set_batch(keys, values)
            for k, v in zip(key_list, values.tolist()):
                model[k] = v
    assert len(m) == len(model)
    assert m.to_dict() == pytest.approx(model)


class TestAssumeUnique:
    def test_fast_path_matches_general(self):
        keys = np.array([5, 17, 3, 999], dtype=np.int64)
        values = np.array([1.0, 2.0, 3.0, 4.0])
        a = OpenAddressingMap()
        a.set_batch(keys, values)
        b = OpenAddressingMap()
        b.set_batch(keys, values, assume_unique=True)
        assert a.to_dict() == b.to_dict()

    def test_overwrite_existing(self):
        m = OpenAddressingMap()
        m.set_batch(np.array([7]), np.array([1.0]), assume_unique=True)
        m.set_batch(np.array([7]), np.array([9.0]), assume_unique=True)
        assert m[7] == 9.0
        assert len(m) == 1
