"""Unit tests for the hash mixers."""

import numpy as np
import pytest

from repro.hashing.hash_functions import (
    fibonacci_hash,
    identity_hash,
    mask_for_capacity,
    splitmix64,
)


class TestSplitmix64:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        np.testing.assert_array_equal(splitmix64(keys), splitmix64(keys))

    def test_no_trivial_collisions(self):
        keys = np.arange(100_000, dtype=np.int64)
        hashes = splitmix64(keys)
        assert len(np.unique(hashes)) == len(keys)

    def test_low_bits_spread(self):
        # Sequential keys must spread over low bits (the table mask keeps
        # only these); a uniform spread has ~N/16 keys per bucket.
        keys = np.arange(16_000, dtype=np.int64)
        buckets = splitmix64(keys) & np.uint64(15)
        counts = np.bincount(buckets.astype(np.int64), minlength=16)
        assert counts.min() > 800 and counts.max() < 1200

    def test_strided_keys_spread(self):
        # Keys sharing low bits (tile-strided indices) must still spread.
        keys = np.arange(0, 1 << 20, 1 << 10, dtype=np.int64)
        buckets = splitmix64(keys) & np.uint64(63)
        counts = np.bincount(buckets.astype(np.int64), minlength=64)
        assert counts.min() > 0

    def test_output_dtype(self):
        assert splitmix64(np.array([1], dtype=np.int64)).dtype == np.uint64

    def test_input_not_mutated(self):
        keys = np.arange(10, dtype=np.int64)
        before = keys.copy()
        splitmix64(keys)
        np.testing.assert_array_equal(keys, before)


class TestFibonacciHash:
    def test_range(self):
        keys = np.arange(1000, dtype=np.int64)
        h = fibonacci_hash(keys, 8)
        assert h.max() < 256

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            fibonacci_hash(np.array([1]), 0)
        with pytest.raises(ValueError):
            fibonacci_hash(np.array([1]), 65)

    def test_sequential_spread(self):
        keys = np.arange(4096, dtype=np.int64)
        h = fibonacci_hash(keys, 6)
        counts = np.bincount(h.astype(np.int64), minlength=64)
        assert counts.max() < 3 * counts.mean()


class TestHelpers:
    def test_identity_hash(self):
        keys = np.array([5, 7], dtype=np.int64)
        np.testing.assert_array_equal(identity_hash(keys), [5, 7])

    def test_mask(self):
        assert mask_for_capacity(64) == 63

    def test_mask_rejects_non_power(self):
        with pytest.raises(ValueError):
            mask_for_capacity(48)
        with pytest.raises(ValueError):
            mask_for_capacity(0)
