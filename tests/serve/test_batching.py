"""Unit tests for signature-affinity micro-batching."""

import pytest

from repro.errors import ConfigError
from repro.serve import (
    Job,
    Request,
    Ticket,
    affinity_groups,
    affinity_order,
    plan_microbatches,
)


def make_job(seq: int, affinity: str, priority: int = 0) -> Job:
    return Job(
        request=Request(kind="pairwise", name=f"j{seq}", priority=priority),
        ticket=Ticket(),
        seq=seq,
        arrival=float(seq),
        deadline_at=None,
        affinity=affinity,
    )


def interleaved(n: int, signatures=("A", "B")) -> list:
    return [make_job(k, signatures[k % len(signatures)]) for k in range(n)]


class TestAffinityGroups:
    def test_buckets_by_key_in_admission_order(self):
        jobs = interleaved(6)
        groups = affinity_groups(jobs)
        assert list(groups) == ["A", "B"]
        assert [j.seq for j in groups["A"]] == [0, 2, 4]
        assert [j.seq for j in groups["B"]] == [1, 3, 5]


class TestAffinityOrder:
    def test_groups_run_consecutively(self):
        ordered = affinity_order(interleaved(6))
        keys = [j.affinity for j in ordered]
        assert keys == ["A", "A", "A", "B", "B", "B"]

    def test_is_a_permutation(self):
        jobs = interleaved(9, signatures=("A", "B", "C"))
        ordered = affinity_order(jobs)
        assert sorted(j.seq for j in ordered) == list(range(9))

    def test_priority_dominates_grouping(self):
        jobs = [
            make_job(0, "A", priority=0),
            make_job(1, "B", priority=7),
            make_job(2, "A", priority=0),
        ]
        ordered = affinity_order(jobs)
        assert [j.seq for j in ordered] == [1, 0, 2]

    def test_fifo_within_group(self):
        jobs = [make_job(k, "A") for k in (5, 1, 3)]
        assert [j.seq for j in affinity_order(jobs)] == [1, 3, 5]

    def test_empty_batch(self):
        assert affinity_order([]) == []


class TestPlanMicrobatches:
    def test_chunks_respect_max_batch(self):
        batches = plan_microbatches(interleaved(10), max_batch=3)
        assert all(len(b) <= 3 for b in batches)
        assert sum(len(b) for b in batches) == 10

    def test_prefers_group_boundaries(self):
        # 3 As then 3 Bs with max_batch 4: the cut lands on the A|B
        # boundary (>= max_batch // 2) rather than splitting B.
        jobs = interleaved(6)
        batches = plan_microbatches(jobs, max_batch=4)
        assert [[j.affinity for j in b] for b in batches] == [
            ["A", "A", "A"], ["B", "B", "B"],
        ]

    def test_bad_max_batch(self):
        with pytest.raises(ConfigError):
            plan_microbatches([], max_batch=0)
