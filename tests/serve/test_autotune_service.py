"""Service-level autotuning: config gates, exploration under traffic,
persisted state across a service restart."""

import json

import numpy as np
import pytest

from repro import contract
from repro.data.random_tensors import random_coo
from repro.errors import ConfigError
from repro.machine.specs import DESKTOP
from repro.serve import ContractionService, Request, ServiceConfig


@pytest.fixture
def operands():
    a = random_coo((40, 32), nnz=220, seed=21)
    b = random_coo((32, 28), nnz=180, seed=22)
    return a, b


def tuned_config(tmp_path, **overrides):
    defaults = dict(
        queue_capacity=16, n_workers=1,
        autotune=True, autotune_explore_rate=0.5,
        autotune_min_trials=2, autotune_promote_margin=0.05,
        autotune_state_path=str(tmp_path / "autotune.json"),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestConfigGates:
    def test_unsafe_explore_rate_refused(self, tmp_path):
        with pytest.raises(ConfigError, match="FSTC601"):
            ContractionService(
                machine=DESKTOP,
                config=tuned_config(tmp_path, autotune_explore_rate=0.9),
            )

    def test_zero_promote_margin_refused(self, tmp_path):
        with pytest.raises(ConfigError, match="FSTC603"):
            ContractionService(
                machine=DESKTOP,
                config=tuned_config(tmp_path, autotune_promote_margin=0.0),
            )

    def test_unpersisted_state_is_a_kept_warning(self, tmp_path):
        service = ContractionService(
            machine=DESKTOP,
            config=tuned_config(tmp_path, autotune_state_path=None),
        )
        codes = [d.code for d in service.config_diagnostics]
        assert "FSTC602" in codes
        service.stop(drain=False)

    def test_disabled_autotune_builds_no_tuner(self):
        service = ContractionService(
            machine=DESKTOP,
            config=ServiceConfig(queue_capacity=8, n_workers=1),
        )
        assert service.tuner is None
        assert "autotune" not in service.metrics_json()
        service.stop(drain=False)


class TestExplorationUnderTraffic:
    def test_explored_results_stay_correct(self, tmp_path, operands):
        a, b = operands
        expected = contract(a, b, [(1, 0)])
        with ContractionService(
            machine=DESKTOP, config=tuned_config(tmp_path)
        ) as service:
            for _ in range(20):
                response = service.call(
                    Request.pairwise(a, b, [(1, 0)]), timeout=30.0
                )
                assert response.status == "ok"
                np.testing.assert_array_equal(
                    response.result.coords, expected.coords
                )
                np.testing.assert_allclose(
                    response.result.to_dense(), expected.to_dense(),
                    rtol=1e-8, atol=1e-10,
                )
            metrics = service.metrics_json()
        assert metrics["autotune"]["eligible_calls"] > 0

    def test_deadline_requests_never_explored(self, tmp_path, operands):
        a, b = operands
        with ContractionService(
            machine=DESKTOP,
            config=tuned_config(tmp_path, autotune_explore_rate=0.5),
        ) as service:
            for _ in range(10):
                service.call(
                    Request.pairwise(a, b, [(1, 0)], deadline_s=30.0),
                    timeout=30.0,
                )
            metrics = service.metrics_json()
        assert metrics["autotune"]["eligible_calls"] == 0
        assert metrics["autotune"]["explorations"] == 0


class TestPersistenceAcrossRestart:
    def test_stop_flushes_and_next_service_warm_starts(
        self, tmp_path, operands
    ):
        a, b = operands
        path = tmp_path / "autotune.json"
        config = tuned_config(tmp_path)
        with ContractionService(machine=DESKTOP, config=config) as service:
            for _ in range(16):
                service.call(Request.pairwise(a, b, [(1, 0)]), timeout=30.0)
            samples = service.tuner.metrics()["samples"]
        assert samples > 0
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["machine"] == DESKTOP.name

        second = ContractionService(machine=DESKTOP, config=config)
        try:
            assert second.tuner.state.loaded_from == str(path)
            assert second.tuner.metrics()["samples"] == samples
        finally:
            second.stop(drain=False)
