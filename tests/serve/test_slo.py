"""Unit tests for the SLO metrics layer."""

import threading

import pytest

from repro.errors import ConfigError
from repro.serve import LatencyHistogram, Response, ServiceMetrics
from repro.serve.slo import STAGES


class TestLatencyHistogram:
    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(base=0.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(factor=1.0)
        with pytest.raises(ConfigError):
            LatencyHistogram(n_buckets=1)

    def test_quantiles_bound_the_samples(self):
        hist = LatencyHistogram()
        samples = [0.001, 0.002, 0.004, 0.008, 0.1]
        for s in samples:
            hist.record(s)
        assert hist.count == 5
        # Bucket upper bounds: within a factor of 2 above the true value,
        # clamped to the maximum ever seen.
        assert max(samples) <= hist.p99 <= max(samples) * 2
        assert hist.quantile(1.0) == max(samples)
        # p50's true value is 0.004; the estimate is its bucket's upper
        # edge, at most one factor-of-2 above.
        assert 0.004 <= hist.p50 <= 0.008

    def test_mean_is_exact(self):
        hist = LatencyHistogram()
        for s in (0.01, 0.03):
            hist.record(s)
        assert hist.mean == pytest.approx(0.02)

    def test_negative_clamps_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.count == 1
        assert hist.max_seen == 0.0

    def test_empty_quantile_is_zero(self):
        assert LatencyHistogram().p99 == 0.0

    def test_bad_quantile(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().quantile(1.5)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.01)
        b.record(0.04)
        a.merge(b)
        assert a.count == 2
        assert a.max_seen == 0.04

    def test_merge_layout_mismatch(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().merge(LatencyHistogram(base=1e-3))

    def test_to_json_shape(self):
        hist = LatencyHistogram()
        hist.record(0.005)
        doc = hist.to_json()
        assert doc["count"] == 1
        assert doc["max_seconds"] == 0.005
        assert len(doc["buckets_le"]) == 1

    def test_concurrent_records_are_all_counted(self):
        hist = LatencyHistogram()
        n, threads = 500, 8

        def worker():
            for _ in range(n):
                hist.record(0.001)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert hist.count == n * threads


class TestServiceMetrics:
    def test_observe_tallies_everything(self):
        metrics = ServiceMetrics()
        metrics.note_submitted()
        metrics.observe(Response(
            name="r", status="degraded", degrade_rung="cheap-path",
            timings={"queue_wait": 0.001, "execute": 0.002, "total": 0.004},
        ))
        assert metrics.submitted == 1
        assert metrics.completed == 1
        assert metrics.statuses["degraded"] == 1
        assert metrics.degrade_rungs == {"cheap-path": 1}
        for stage in STAGES:
            assert metrics.stages[stage].count == 1

    def test_rate(self):
        metrics = ServiceMetrics()
        for status in ("ok", "ok", "shed", "timeout"):
            metrics.observe(Response(name="r", status=status))
        assert metrics.rate("ok") == pytest.approx(0.5)
        assert metrics.rate("shed") == pytest.approx(0.25)
        assert ServiceMetrics().rate("ok") == 0.0

    def test_to_json_keys(self):
        metrics = ServiceMetrics()
        metrics.observe(Response(name="r", status="ok",
                                 timings={"total": 0.01}))
        doc = metrics.to_json()
        assert set(doc) == {
            "submitted", "completed", "statuses", "degrade_rungs",
            "latency", "kernel_counters",
        }
        assert set(doc["latency"]) == set(STAGES)

    def test_render_mentions_statuses_and_stages(self):
        metrics = ServiceMetrics()
        metrics.note_submitted()
        metrics.observe(Response(name="r", status="ok",
                                 timings={"total": 0.01}))
        text = metrics.render()
        assert "1 submitted, 1 completed" in text
        assert "ok=1" in text
        assert "total" in text
