"""Cross-process metrics snapshot merging (router aggregation)."""

import pytest

from repro.serve import (
    LatencyHistogram,
    Response,
    ServiceMetrics,
    merge_histogram_json,
    merge_metrics_json,
)


def sample_metrics(latencies, statuses) -> ServiceMetrics:
    metrics = ServiceMetrics()
    for seconds, status in zip(latencies, statuses):
        metrics.note_submitted()
        metrics.observe(Response(
            name="r", status=status,
            timings={"queue_wait": seconds / 4, "execute": seconds,
                     "total": seconds * 1.25},
        ))
    return metrics


def snapshot(latencies, statuses, *, hits=0, misses=0, high_water=0) -> dict:
    """A ``metrics_json``-shaped document like one shard would export."""
    doc = sample_metrics(latencies, statuses).to_json()
    doc["queue"] = {
        "capacity": 16, "policy": "reject", "depth": 0,
        "high_water": high_water, "admitted": len(latencies),
        "rejected": 0, "evicted": 0,
    }
    total = hits + misses
    doc["runtime"] = {
        "calls": total,
        "plan_cache_hits": hits,
        "plan_cache_misses": misses,
        "plan_hit_rate": hits / total if total else 0.0,
        "table_reuse_hits": hits,
        "table_builds": misses,
        "table_reuse_rate": hits / total if total else 0.0,
        "measured_seconds": sum(latencies),
        "seconds_saved": 0.1 * len(latencies),
        "estimated_speedup": 1.0,
    }
    doc["machine"] = "desktop-i7-11700F"
    return doc


def assert_docs_close(a, b, path=""):
    """Recursive equality with float tolerance (fold-order noise)."""
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ), f"type mismatch at {path}: {a!r} vs {b!r}"
    if isinstance(a, dict):
        assert set(a) == set(b), f"keys differ at {path}"
        for key in a:
            assert_docs_close(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        assert len(a) == len(b), f"length differs at {path}"
        for i, (va, vb) in enumerate(zip(a, b)):
            assert_docs_close(va, vb, f"{path}[{i}]")
    elif isinstance(a, float) or isinstance(b, float):
        assert a == pytest.approx(b), f"value differs at {path}"
    else:
        assert a == b, f"value differs at {path}"


SNAPSHOTS = [
    snapshot([0.001, 0.002, 0.004], ["ok", "ok", "degraded"],
             hits=4, misses=2, high_water=3),
    snapshot([0.010, 0.080], ["ok", "shed"], hits=9, misses=1, high_water=7),
    snapshot([0.0005], ["failed"], hits=0, misses=1, high_water=1),
]


class TestHistogramMerge:
    def test_matches_live_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for s in (0.001, 0.004, 0.2):
            a.record(s)
        for s in (0.002, 0.5):
            b.record(s)
        json_merge = merge_histogram_json(a.to_json(), b.to_json())
        a.merge(b)
        assert_docs_close(json_merge, a.to_json())

    def test_empty_side_is_identity(self):
        hist = LatencyHistogram()
        for s in (0.003, 0.009):
            hist.record(s)
        doc = hist.to_json()
        assert_docs_close(merge_histogram_json(doc, {}), doc)
        assert_docs_close(merge_histogram_json({}, doc), doc)


class TestMetricsMerge:
    def test_counts_sum_and_peaks_max(self):
        merged = merge_metrics_json(SNAPSHOTS)
        assert merged["completed"] == 6
        assert merged["statuses"]["ok"] == 3
        assert merged["statuses"]["failed"] == 1
        assert merged["queue"]["high_water"] == 7
        assert merged["queue"]["admitted"] == 6
        assert merged["latency"]["execute"]["count"] == 6

    def test_derived_rates_recomputed_not_averaged(self):
        merged = merge_metrics_json(SNAPSHOTS)
        # 13 hits / 17 calls; any averaging of per-shard rates (0.67,
        # 0.9, 0.0) gives a different number.
        assert merged["runtime"]["plan_hit_rate"] == pytest.approx(13 / 17)
        measured = merged["runtime"]["measured_seconds"]
        saved = merged["runtime"]["seconds_saved"]
        assert merged["runtime"]["estimated_speedup"] == pytest.approx(
            (measured + saved) / measured
        )

    def test_merge_is_associative(self):
        a, b, c = SNAPSHOTS
        left = merge_metrics_json([merge_metrics_json([a, b]), c])
        right = merge_metrics_json([a, merge_metrics_json([b, c])])
        flat = merge_metrics_json([a, b, c])
        assert_docs_close(left, right)
        assert_docs_close(left, flat)

    def test_merge_is_order_independent(self):
        a, b, c = SNAPSHOTS
        assert_docs_close(
            merge_metrics_json([a, b, c]), merge_metrics_json([c, a, b])
        )

    def test_single_snapshot_equals_empty_peer_merge(self):
        solo = merge_metrics_json([SNAPSHOTS[0]])
        assert solo["completed"] == 3
        assert solo["runtime"]["plan_hit_rate"] == pytest.approx(4 / 6)

    def test_empty_input(self):
        assert merge_metrics_json([]) == {}

    def test_disagreeing_labels_become_mixed(self):
        a = dict(SNAPSHOTS[0])
        b = dict(SNAPSHOTS[1])
        b["machine"] = "server-epyc"
        merged = merge_metrics_json([a, b])
        assert merged["machine"] == "mixed"
        same = merge_metrics_json([a, dict(SNAPSHOTS[1])])
        assert same["machine"] == "desktop-i7-11700F"
