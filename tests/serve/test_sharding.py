"""Unit tests for the consistent-hash ring."""

import pytest

from repro.errors import ConfigError
from repro.serve.sharding import (
    HashRing,
    ring_shares,
    suggest_weights,
)

KEYS = [f"sig{i}" for i in range(400)]


class TestHashRing:
    def test_routing_is_deterministic_across_rings(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_membership_and_len(self):
        ring = HashRing(range(3))
        assert len(ring) == 3
        assert 2 in ring and 7 not in ring
        assert ring.shards == [0, 1, 2]

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(ConfigError):
            HashRing().route("sig0")

    def test_every_key_lands_on_a_member(self):
        ring = HashRing(range(5))
        assert all(ring.route(k) in ring for k in KEYS)

    def test_balance_within_tolerance(self):
        # 128 vnodes/shard keeps each shard's share of a large key set
        # within ~2x of fair — the statistical guarantee FSTC305's
        # PATHOLOGICAL_SHARE threshold is calibrated against.
        ring = HashRing(range(4))
        shares = ring_shares(ring, KEYS)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share > 0 for share in shares.values())
        assert max(shares.values()) < 2.0 * 0.25

    def test_minimal_movement_on_removal(self):
        # Dropping one shard must remap only the keys it owned.
        ring = HashRing(range(4))
        before = {k: ring.route(k) for k in KEYS}
        ring.remove_shard(2)
        for key, owner in before.items():
            if owner != 2:
                assert ring.route(key) == owner

    def test_minimal_movement_on_addition(self):
        # Adding a shard only steals keys, never shuffles survivors.
        ring = HashRing(range(3))
        before = {k: ring.route(k) for k in KEYS}
        ring.add_shard(3)
        moved = [k for k in KEYS if ring.route(k) != before[k]]
        assert all(ring.route(k) == 3 for k in moved)
        assert 0 < len(moved) < len(KEYS) / 2

    def test_remove_unknown_shard_raises(self):
        with pytest.raises(ConfigError):
            HashRing(range(2)).remove_shard(9)

    def test_weights_shift_share(self):
        light = HashRing(range(2))
        heavy = HashRing(range(2), weights={0: 4.0, 1: 1.0})
        assert (ring_shares(heavy, KEYS)[0]
                > ring_shares(light, KEYS)[0])

    def test_set_weights_rejects_unknown_shards(self):
        ring = HashRing(range(2))
        with pytest.raises(ConfigError):
            ring.set_weights({5: 1.0})

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            HashRing(replicas=0)
        with pytest.raises(ConfigError):
            HashRing(range(2)).add_shard(3, weight=0.0)


class TestSuggestWeights:
    def test_overloaded_shard_loses_weight(self):
        ring = HashRing(range(2))
        weights = suggest_weights(ring, {0: 30.0, 1: 10.0})
        assert weights[0] < 1.0 < weights[1]

    def test_balanced_loads_keep_weights(self):
        ring = HashRing(range(3))
        weights = suggest_weights(ring, {0: 5.0, 1: 5.0, 2: 5.0})
        assert all(w == pytest.approx(1.0) for w in weights.values())

    def test_weights_are_clamped(self):
        from repro.serve.sharding import MAX_WEIGHT, MIN_WEIGHT

        ring = HashRing(range(2))
        for _ in range(20):
            ring.set_weights(suggest_weights(ring, {0: 1e6, 1: 1e-6}, gain=1.0))
        assert ring.weight(0) == pytest.approx(MIN_WEIGHT)
        assert ring.weight(1) == pytest.approx(MAX_WEIGHT)

    def test_rebalancing_evens_a_skewed_split(self):
        # The router's rebalance loop: route, measure, re-weight.  A few
        # rounds must shrink the worst share for a fixed key set.
        ring = HashRing(range(4))
        worst0 = max(ring_shares(ring, KEYS).values())
        for _ in range(5):
            loads = {
                s: len(owned)
                for s, owned in ring.assignment(KEYS).items()
            }
            ring.set_weights(suggest_weights(ring, loads))
        assert max(ring_shares(ring, KEYS).values()) <= worst0

    def test_unknown_and_empty_loads_are_ignored(self):
        ring = HashRing(range(2))
        assert suggest_weights(ring, {}) == {0: 1.0, 1: 1.0}
        assert suggest_weights(ring, {9: 5.0}) == {0: 1.0, 1: 1.0}

    def test_gain_validated(self):
        with pytest.raises(ConfigError):
            suggest_weights(HashRing(range(2)), {0: 1.0}, gain=0.0)


class TestHashRingProperties:
    """Hypothesis property tests for the ring's edge cases: single-shard
    totality, weight clamping at the extremes, and virtual-node
    determinism across independently built rings (and across
    processes — BLAKE2b placement must not depend on PYTHONHASHSEED)."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=60, deadline=None)
    @given(key=st.text(min_size=0, max_size=40),
           replicas=st.integers(1, 64),
           shard=st.integers(-1000, 1000))
    def test_single_shard_ring_routes_everything_to_it(self, key, replicas, shard):
        ring = HashRing([shard], replicas=replicas)
        assert ring.route(key) == shard

    @settings(max_examples=40, deadline=None)
    @given(weight=st.floats(0.01, 50.0, allow_nan=False))
    def test_any_positive_weight_keeps_at_least_one_vnode(self, weight):
        ring = HashRing(replicas=4)
        ring.add_shard(0, weight=weight)
        assert len(ring._points) >= 1
        assert ring.route("anything") == 0

    @settings(max_examples=40, deadline=None)
    @given(weight=st.floats(-10.0, 0.0))
    def test_nonpositive_weight_rejected(self, weight):
        ring = HashRing()
        with pytest.raises(ConfigError):
            ring.add_shard(0, weight=weight)

    @settings(max_examples=30, deadline=None)
    @given(loads=st.dictionaries(st.integers(0, 3),
                                 st.floats(0, 1e9, allow_nan=False),
                                 min_size=1, max_size=4),
           gain=st.floats(0.05, 1.0))
    def test_suggested_weights_always_inside_clamp(self, loads, gain):
        from repro.serve.sharding import MAX_WEIGHT, MIN_WEIGHT

        ring = HashRing(range(4))
        out = suggest_weights(ring, loads, gain=gain)
        assert set(out) == set(ring.shards)
        for weight in out.values():
            assert MIN_WEIGHT <= weight <= MAX_WEIGHT
        ring.set_weights(out)  # the suggestion must always be applicable

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 8),
           replicas=st.integers(1, 128),
           keys=st.lists(st.text(max_size=24), min_size=1, max_size=30))
    def test_independent_rings_route_identically(self, n, replicas, keys):
        a = HashRing(range(n), replicas=replicas)
        b = HashRing(range(n), replicas=replicas)
        for key in keys:
            assert a.route(key) == b.route(key)

    def test_vnode_placement_is_stable_across_processes(self):
        """Routing decisions must survive a process boundary: a child
        interpreter (fresh hash seed) routes the key set exactly as the
        parent does."""
        import json
        import subprocess
        import sys

        keys = [f"sig{i}" for i in range(64)]
        parent = {k: HashRing(range(4)).route(k) for k in keys}
        script = (
            "import json, sys\n"
            "from repro.serve.sharding import HashRing\n"
            "ring = HashRing(range(4))\n"
            "keys = json.load(sys.stdin)\n"
            "json.dump({k: ring.route(k) for k in keys}, sys.stdout)\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(keys), capture_output=True, text=True,
            check=True,
        )
        assert {k: int(v) for k, v in json.loads(child.stdout).items()} == parent
