"""Unit tests for the load generators and their report."""

import pytest

from repro.errors import ConfigError
from repro.machine.specs import DESKTOP
from repro.serve import (
    ContractionService,
    LoadReport,
    ServiceConfig,
    run_closed_loop,
    run_open_loop,
    synthetic_requests,
)


def service(**overrides) -> ContractionService:
    defaults = dict(queue_capacity=32, n_workers=2)
    defaults.update(overrides)
    return ContractionService(machine=DESKTOP, config=ServiceConfig(**defaults))


class TestSyntheticRequests:
    def test_round_robin_signatures(self):
        requests = synthetic_requests(8, n_signatures=3, seed=1)
        assert len(requests) == 8
        keys = [r.affinity_key(DESKTOP) for r in requests[:3]]
        assert len(set(keys)) == 3
        # Position k and k + n_signatures share a template (same tensors).
        assert requests[0].left is requests[3].left
        assert requests[0].affinity_key(DESKTOP) == keys[0]

    def test_priority_classes(self):
        requests = synthetic_requests(6, n_signatures=2, priority_classes=3)
        assert sorted({r.priority for r in requests}) == [0, 1, 2]

    def test_bad_signature_count(self):
        with pytest.raises(ConfigError):
            synthetic_requests(4, n_signatures=0)


class TestOpenLoop:
    def test_all_requests_reach_a_terminal_status(self):
        requests = synthetic_requests(12, n_signatures=2, seed=2)
        with service() as s:
            report = run_open_loop(s, requests, rate_rps=500.0, seed=2)
        assert report.mode == "open"
        assert report.n_requests == 12
        assert sum(report.statuses.values()) == 12
        assert report.offered_rps == 500.0
        assert report.duration_s > 0

    def test_bad_rate(self):
        with service() as s:
            with pytest.raises(ConfigError):
                run_open_loop(s, [], rate_rps=0.0)


class TestClosedLoop:
    def test_self_limits_without_shedding(self):
        requests = synthetic_requests(10, n_signatures=2, seed=3)
        with service(queue_capacity=4) as s:
            report = run_closed_loop(s, requests, concurrency=2)
        assert report.mode == "closed"
        assert report.statuses.get("ok", 0) == 10
        assert report.shed_rate == 0.0
        assert report.achieved_rps > 0

    def test_bad_concurrency(self):
        with service() as s:
            with pytest.raises(ConfigError):
                run_closed_loop(s, [], concurrency=0)


class TestLoadReport:
    def test_rates_and_json(self):
        report = LoadReport(
            mode="open", n_requests=10, offered_rps=100.0, duration_s=0.5,
            statuses={"ok": 8, "shed": 2}, p50_s=0.001, p99_s=0.01,
        )
        assert report.achieved_rps == pytest.approx(20.0)
        assert report.shed_rate == pytest.approx(0.2)
        assert report.rate("ok") == pytest.approx(0.8)
        doc = report.to_json()
        assert doc["statuses"] == {"ok": 8, "shed": 2}
        assert "achieved_rps" in doc

    def test_render_mentions_the_essentials(self):
        report = LoadReport(
            mode="open", n_requests=4, offered_rps=10.0, duration_s=1.0,
            statuses={"ok": 4}, queue_high_water=3,
        )
        text = report.render()
        assert "open-loop" in text
        assert "ok=4" in text
        assert "high-water 3" in text

    def test_empty_report_rates_are_zero(self):
        report = LoadReport(mode="open", n_requests=0, offered_rps=0.0,
                            duration_s=0.0)
        assert report.achieved_rps == 0.0
        assert report.shed_rate == 0.0
