"""Integration tests for ContractionService: correctness, overload,
degradation, affinity batching."""

import numpy as np
import pytest

from repro import contract
from repro.data.random_tensors import random_coo
from repro.errors import ConfigError, SchedulerError
from repro.machine.specs import DESKTOP
from repro.network import NetworkExecutor
from repro.runtime import ContractionRuntime
from repro.serve import (
    TERMINAL_STATUSES,
    ContractionService,
    Request,
    ServiceConfig,
    synthetic_requests,
)


@pytest.fixture
def operands():
    a = random_coo((30, 24), nnz=120, seed=11)
    b = random_coo((24, 20), nnz=100, seed=12)
    return a, b


def small_service(**overrides) -> ContractionService:
    defaults = dict(queue_capacity=16, n_workers=1)
    defaults.update(overrides)
    return ContractionService(
        machine=DESKTOP, config=ServiceConfig(**defaults)
    )


class TestCorrectness:
    def test_served_result_is_bit_identical_to_direct(self, operands):
        a, b = operands
        expected = contract(a, b, [(1, 0)])
        with small_service() as service:
            response = service.call(
                Request.pairwise(a, b, [(1, 0)]), timeout=30.0
            )
        assert response.status == "ok"
        assert response.degrade_rung is None
        np.testing.assert_array_equal(response.result.coords, expected.coords)
        np.testing.assert_array_equal(response.result.values, expected.values)

    def test_network_request(self, operands):
        a, b = operands
        c = random_coo((20, 10), nnz=60, seed=13)
        expected = NetworkExecutor(machine=DESKTOP).contract(
            "ij,jk,kl->il", a, b, c
        )
        with small_service() as service:
            response = service.call(
                Request.network("ij,jk,kl->il", a, b, c), timeout=30.0
            )
        assert response.status == "ok"
        np.testing.assert_array_equal(response.result.coords, expected.coords)
        np.testing.assert_array_equal(response.result.values, expected.values)

    def test_failed_request_reports_error(self, operands):
        a, b = operands
        with small_service() as service:
            # Contracting mismatched extents is a ShapeError downstream.
            response = service.call(
                Request.pairwise(a, b, [(0, 0)]), timeout=30.0
            )
        assert response.status == "failed"
        assert response.detail
        assert response.result is None


class TestDegradationLadder:
    def test_cheap_path_matches_sparse_accumulator(self, operands):
        """Rung 2 skips Algorithm 7's probe: the result must be
        bit-identical to a direct sparse-accumulator contraction."""
        a, b = operands
        expected = contract(a, b, [(1, 0)], accumulator="sparse")
        with small_service(force_degraded=True) as service:
            response = service.call(
                Request.pairwise(a, b, [(1, 0)]), timeout=30.0
            )
        assert response.status == "degraded"
        assert response.degrade_rung == "cheap-path"
        assert response.accumulator == "sparse"
        np.testing.assert_array_equal(response.result.coords, expected.coords)
        np.testing.assert_array_equal(response.result.values, expected.values)

    def test_cached_plan_rung_replays_full_quality(self, operands):
        """Rung 1: a warm plan under the request's signature is replayed
        — numerically identical to the undegraded path."""
        a, b = operands
        runtime = ContractionRuntime(machine=DESKTOP, calibrate=False)
        expected, _ = runtime.contract(a, b, [(1, 0)], return_record=True)
        service = ContractionService(
            machine=DESKTOP,
            config=ServiceConfig(queue_capacity=16, n_workers=1,
                                 force_degraded=True),
            runtime=runtime,
        )
        with service:
            response = service.call(
                Request.pairwise(a, b, [(1, 0)]), timeout=30.0
            )
        assert response.status == "degraded"
        assert response.degrade_rung == "cached-plan"
        np.testing.assert_array_equal(response.result.coords, expected.coords)
        np.testing.assert_array_equal(response.result.values, expected.values)

    def test_degraded_network_takes_left_path(self, operands):
        a, b = operands
        c = random_coo((20, 10), nnz=60, seed=13)
        expected = NetworkExecutor(machine=DESKTOP).contract(
            "ij,jk,kl->il", a, b, c, optimizer="left"
        )
        with small_service(force_degraded=True) as service:
            response = service.call(
                Request.network("ij,jk,kl->il", a, b, c), timeout=30.0
            )
        assert response.status == "degraded"
        assert response.degrade_rung == "cheap-path"
        np.testing.assert_array_equal(response.result.coords, expected.coords)
        np.testing.assert_array_equal(response.result.values, expected.values)

    def test_expired_deadline_times_out_without_executing(self, operands):
        a, b = operands
        with small_service() as service:
            response = service.call(
                Request.pairwise(a, b, [(1, 0)], deadline_s=1e-6),
                timeout=30.0,
            )
        assert response.status == "timeout"
        assert "queued" in response.detail


class TestOverload:
    @pytest.mark.parametrize("policy", ["reject", "shed_oldest"])
    def test_bounded_queue_sheds_instead_of_growing(self, policy):
        capacity = 4
        requests = synthetic_requests(60, n_signatures=2, seed=3)
        with small_service(queue_capacity=capacity, policy=policy,
                           max_batch=4) as service:
            tickets = [service.submit(r) for r in requests]
            responses = [t.result(30.0) for t in tickets]
            stats = service.queue.stats()
        assert len(responses) == len(requests)
        assert all(r.status in TERMINAL_STATUSES for r in responses)
        assert stats["high_water"] <= capacity
        # Submission is far faster than execution, so the bound binds.
        assert sum(r.status == "shed" for r in responses) > 0
        assert all(r.status != "failed" for r in responses)

    def test_block_policy_backpressures_without_loss(self):
        requests = synthetic_requests(20, n_signatures=2, seed=4)
        with small_service(queue_capacity=2, policy="block") as service:
            responses = [
                service.submit(r).result(30.0) for r in requests
            ]
            stats = service.queue.stats()
        assert all(r.status == "ok" for r in responses)
        assert stats["high_water"] <= 2

    def test_shed_oldest_prefers_the_low_class(self, operands):
        a, b = operands
        # Flood with low-priority work, then a high-priority burst.
        # Eviction picks the lowest class *present*, so once the queue
        # is all-high, highs evict each other — the exact victim choice
        # is proven deterministically at the queue layer; here we check
        # the end-to-end bias: lows shed at least as hard as highs.
        low = [
            Request.pairwise(a, b, [(1, 0)], name=f"low{k}", priority=0)
            for k in range(20)
        ]
        high = [
            Request.pairwise(a, b, [(1, 0)], name=f"high{k}", priority=5)
            for k in range(8)
        ]
        with small_service(queue_capacity=4, policy="shed_oldest",
                           max_batch=4) as service:
            tickets = [service.submit(r) for r in low + high]
            responses = [t.result(30.0) for t in tickets]
        shed = {r.name for r in responses if r.status == "shed"}
        low_rate = sum(1 for n in shed if n.startswith("low")) / len(low)
        high_rate = sum(1 for n in shed if n.startswith("high")) / len(high)
        assert low_rate >= high_rate
        assert any(n.startswith("low") for n in shed)

    def test_stop_without_drain_sheds_queued_work(self, operands):
        a, b = operands
        service = small_service(queue_capacity=16)
        service.start()
        tickets = [
            service.submit(Request.pairwise(a, b, [(1, 0)]))
            for _ in range(8)
        ]
        service.stop(drain=False)
        responses = [t.result(30.0) for t in tickets]
        assert all(r.status in TERMINAL_STATUSES for r in responses)


class TestAffinityBatching:
    def test_affinity_beats_fifo_hit_rate(self):
        """The acceptance experiment: on a mixed-signature stream with a
        one-entry plan cache, FIFO order misses every plan lookup while
        the service's affinity reordering still hits."""
        requests = synthetic_requests(24, n_signatures=2, seed=9)

        # FIFO baseline: the interleaved stream through a one-entry
        # cache alternates signatures, evicting before every reuse.
        fifo = ContractionRuntime(machine=DESKTOP, cache_size=1,
                                  calibrate=False)
        for r in requests:
            fifo.contract(r.left, r.right, r.pairs)
        assert fifo.plan_cache.hit_rate == 0.0

        with small_service(queue_capacity=64, max_batch=24,
                           plan_cache_size=1) as service:
            tickets = [service.submit(r) for r in requests]
            responses = [t.result(30.0) for t in tickets]
            served_rate = service.runtime.plan_cache.hit_rate
        assert all(r.status == "ok" for r in responses)
        assert served_rate > fifo.plan_cache.hit_rate


class TestCrossRequestCSE:
    def network_batch(self, n=4):
        a = random_coo((24, 24), nnz=90, seed=21)
        b = random_coo((24, 24), nnz=90, seed=22)
        c = random_coo((24, 16), nnz=60, seed=23)
        return [Request.network("ij,jk,kl->il", a, b, c) for _ in range(n)]

    def test_micro_batch_shares_step_results(self):
        requests = self.network_batch()
        with small_service(max_batch=8) as service:
            tickets = [service.submit(r) for r in requests]
            responses = [t.result(30.0) for t in tickets]
            hits = service.metrics_json()["network"]["batch_cse_hits"]
        assert all(r.status == "ok" for r in responses)
        assert hits > 0
        ref = responses[0].result.to_dense()
        for r in responses[1:]:
            np.testing.assert_array_equal(ref, r.result.to_dense())

    def test_knob_off_disables_sharing(self):
        requests = self.network_batch()
        with small_service(max_batch=8,
                           cross_request_cse=False) as service:
            tickets = [service.submit(r) for r in requests]
            responses = [t.result(30.0) for t in tickets]
            hits = service.metrics_json()["network"]["batch_cse_hits"]
        assert all(r.status == "ok" for r in responses)
        assert hits == 0

    def test_shared_results_match_direct_execution(self):
        requests = self.network_batch(n=3)
        expected = NetworkExecutor(machine=DESKTOP, passes=None).contract(
            "ij,jk,kl->il",
            *requests[0].operands,
        )
        with small_service(max_batch=8) as service:
            tickets = [service.submit(r) for r in requests]
            responses = [t.result(30.0) for t in tickets]
        for r in responses:
            np.testing.assert_array_equal(
                expected.to_dense(), r.result.to_dense()
            )


class TestLifecycleAndConfig:
    def test_unbounded_config_is_refused(self):
        with pytest.raises(ConfigError):
            ContractionService(
                machine=DESKTOP, config=ServiceConfig(queue_capacity=0)
            )

    def test_unknown_policy_is_refused(self):
        with pytest.raises(ConfigError):
            ServiceConfig(policy="drop_everything")

    def test_submit_before_start_raises(self, operands):
        a, b = operands
        service = small_service()
        with pytest.raises(SchedulerError):
            service.submit(Request.pairwise(a, b, [(1, 0)]))

    def test_stopped_service_cannot_restart(self):
        service = small_service()
        service.start()
        service.stop()
        with pytest.raises(SchedulerError):
            service.start()

    def test_metrics_json_covers_the_stack(self, operands):
        a, b = operands
        with small_service() as service:
            service.call(Request.pairwise(a, b, [(1, 0)]), timeout=30.0)
            doc = service.metrics_json()
        for key in ("submitted", "completed", "statuses", "latency",
                    "queue", "runtime", "network", "machine"):
            assert key in doc
        assert doc["completed"] == 1
        assert doc["queue"]["capacity"] == 16
