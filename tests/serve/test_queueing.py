"""Unit tests for the bounded admission queue and its policies."""

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.serve import AdmissionQueue, Job, Request, Ticket


def make_job(seq: int, priority: int = 0) -> Job:
    # Queue behavior never inspects the operands, so a bare Request
    # stand-in (no tensors) keeps these tests fast and shape-free.
    return Job(
        request=Request(kind="pairwise", name=f"j{seq}", priority=priority),
        ticket=Ticket(),
        seq=seq,
        arrival=float(seq),
        deadline_at=None,
        affinity=f"sig{seq % 2}",
    )


class TestConstruction:
    @pytest.mark.parametrize("capacity", [None, 0, -3])
    def test_unbounded_capacity_rejected(self, capacity):
        with pytest.raises(ConfigError):
            AdmissionQueue(capacity, "reject")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(4, "drop_newest")


class TestRejectPolicy:
    def test_admits_until_full_then_refuses(self):
        q = AdmissionQueue(2, "reject")
        assert q.offer(make_job(1)) == (True, None)
        assert q.offer(make_job(2)) == (True, None)
        admitted, evicted = q.offer(make_job(3))
        assert not admitted and evicted is None
        stats = q.stats()
        assert stats["depth"] == 2
        assert stats["rejected"] == 1


class TestShedOldestPolicy:
    def test_evicts_oldest_of_lowest_class(self):
        q = AdmissionQueue(3, "shed_oldest")
        q.offer(make_job(1, priority=1))
        q.offer(make_job(2, priority=0))  # lowest class, oldest of it
        q.offer(make_job(3, priority=0))
        admitted, evicted = q.offer(make_job(4, priority=2))
        assert admitted
        assert evicted is not None and evicted.seq == 2
        assert q.depth == 3

    def test_depth_never_exceeds_capacity(self):
        q = AdmissionQueue(4, "shed_oldest")
        for k in range(50):
            q.offer(make_job(k))
            assert q.depth <= 4
        assert q.stats()["high_water"] <= 4


class TestBlockPolicy:
    def test_timeout_refuses(self):
        q = AdmissionQueue(1, "block")
        q.offer(make_job(1))
        t0 = time.perf_counter()
        admitted, evicted = q.offer(make_job(2), timeout=0.02)
        assert not admitted and evicted is None
        assert time.perf_counter() - t0 >= 0.02

    def test_unblocks_when_space_frees(self):
        q = AdmissionQueue(1, "block")
        q.offer(make_job(1))
        result = {}

        def submitter():
            result["offer"] = q.offer(make_job(2), timeout=5.0)

        t = threading.Thread(target=submitter)
        t.start()
        time.sleep(0.02)
        assert q.drain(1)  # frees the slot
        t.join(timeout=5.0)
        assert result["offer"] == (True, None)


class TestDrain:
    def test_priority_then_fifo_order(self):
        q = AdmissionQueue(8, "reject")
        q.offer(make_job(1, priority=0))
        q.offer(make_job(2, priority=5))
        q.offer(make_job(3, priority=5))
        taken = q.drain(3)
        assert [j.seq for j in taken] == [2, 3, 1]

    def test_respects_max_items(self):
        q = AdmissionQueue(8, "reject")
        for k in range(5):
            q.offer(make_job(k))
        assert len(q.drain(2)) == 2
        assert q.depth == 3

    def test_empty_drain_times_out(self):
        q = AdmissionQueue(2, "reject")
        assert q.drain(1, timeout=0.01) == []

    def test_closed_queue_hands_out_leftovers(self):
        q = AdmissionQueue(4, "reject")
        q.offer(make_job(1))
        q.close()
        assert len(q.drain(4)) == 1
        assert q.drain(4, timeout=0.01) == []

    def test_bad_max_items(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(2, "reject").drain(0)


class TestLifecycle:
    def test_closed_queue_refuses_offers(self):
        q = AdmissionQueue(2, "reject")
        q.close()
        assert q.offer(make_job(1)) == (False, None)
        assert q.closed

    def test_close_wakes_blocked_submitter(self):
        q = AdmissionQueue(1, "block")
        q.offer(make_job(1))
        result = {}

        def submitter():
            result["offer"] = q.offer(make_job(2), timeout=10.0)

        t = threading.Thread(target=submitter)
        t.start()
        time.sleep(0.02)
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert result["offer"] == (False, None)

    def test_drain_all_empties(self):
        q = AdmissionQueue(4, "reject")
        for k in range(3):
            q.offer(make_job(k))
        assert len(q.drain_all()) == 3
        assert q.depth == 0
