"""Integration tests for the process-sharded router.

Real spawned shard processes are slow to start, so the happy-path
assertions share one module-scoped 2-shard router; the failure-story
tests (kill/requeue, respawn, warm-start) each build their own small
fleet.
"""

import numpy as np
import pytest

from repro import contract
from repro.errors import ConfigError, SchedulerError
from repro.machine.specs import DESKTOP
from repro.serve import (
    Request,
    ServiceConfig,
    ShardedConfig,
    ShardRouter,
    synthetic_requests,
)

SERVICE = ServiceConfig(queue_capacity=32, policy="reject", n_workers=1)


def small_config(**overrides) -> ShardedConfig:
    defaults = dict(n_shards=2, service=SERVICE)
    defaults.update(overrides)
    return ShardedConfig(**defaults)


@pytest.fixture(scope="module")
def router():
    with ShardRouter(machine=DESKTOP, config=small_config()) as r:
        yield r


class TestRouting:
    def test_results_bit_identical_to_direct_contract(self, router):
        requests = synthetic_requests(8, n_signatures=4, seed=21)
        tickets = [router.submit(r) for r in requests]
        for request, ticket in zip(requests, tickets):
            response = ticket.result(60.0)
            assert response.status == "ok"
            direct = contract(request.left, request.right, request.pairs)
            np.testing.assert_array_equal(
                response.result.to_dense(), direct.to_dense()
            )

    def test_signature_affinity_is_stable(self, router):
        # Same signature -> same shard, every time.
        requests = synthetic_requests(6, n_signatures=1, seed=22)
        key = requests[0].affinity_key(DESKTOP)
        owner = router.ring.route(key)
        for t in [router.submit(r) for r in requests]:
            assert t.result(60.0).status == "ok"
        assert all(
            router.ring.route(r.affinity_key(DESKTOP)) == owner
            for r in requests
        )

    def test_network_requests_route_and_execute(self, router):
        from repro.data.random_tensors import random_coo

        a = random_coo((12, 8), nnz=40, seed=31)
        b = random_coo((8, 10), nnz=40, seed=32)
        response = router.call(
            Request.network("ij,jk->ik", a, b), timeout=60.0
        )
        assert response.status == "ok"
        from repro import einsum

        np.testing.assert_array_equal(
            response.result.to_dense(),
            einsum("ij,jk->ik", a, b).to_dense(),
        )

    def test_metrics_json_aggregates_shards(self, router):
        doc = router.metrics_json()
        assert doc["router"]["n_shards"] == 2
        assert doc["router"]["live_shards"] == 2
        assert set(doc["shards"]) == {"0", "1"}
        agg_ok = doc["aggregate"]["statuses"]["ok"]
        assert agg_ok == sum(
            s["statuses"]["ok"] for s in doc["shards"].values()
        )
        assert doc["queue"]["capacity"] == router.config.max_in_flight

    def test_rebalance_returns_applied_weights(self, router):
        weights = router.rebalance({0: 10.0, 1: 2.0})
        assert set(weights) == {0, 1}
        assert weights[0] < weights[1]
        assert router.ring.weight(0) == weights[0]
        router.rebalance({0: 1.0, 1: 1.0})

    def test_submit_requires_running_router(self):
        router = ShardRouter(config=small_config())
        with pytest.raises(SchedulerError):
            router.submit(synthetic_requests(1, seed=1)[0])


class TestAdmission:
    def test_router_sheds_past_in_flight_bound(self):
        config = small_config(n_shards=1, max_in_flight=1)
        requests = synthetic_requests(10, n_signatures=1, seed=23)
        with ShardRouter(config=config) as router:
            tickets = [router.submit(r) for r in requests]
            statuses = [t.result(60.0).status for t in tickets]
        assert "shed" in statuses
        assert statuses.count("ok") >= 1
        shed = [s for s in statuses if s == "shed"]
        assert router.shed_at_router == len(shed)


class TestFailureStory:
    def test_killed_shard_loses_no_accepted_request(self):
        config = small_config(max_retries=2)
        requests = synthetic_requests(10, n_signatures=4, seed=24)
        with ShardRouter(config=config) as router:
            tickets = [router.submit(r) for r in requests[:6]]
            router.kill_shard(0)
            tickets += [router.submit(r) for r in requests[6:]]
            responses = [t.result(120.0) for t in tickets]
            doc = router.metrics_json()
        accepted = [r for r in responses if r.status != "shed"]
        assert all(r.status == "ok" for r in accepted)
        assert len(accepted) == len(requests)
        assert doc["router"]["deaths"] == 1
        assert doc["router"]["live_shards"] == 1

    def test_no_survivor_resolves_failed_or_shed(self):
        config = small_config(n_shards=1, max_retries=2)
        requests = synthetic_requests(4, n_signatures=2, seed=25)
        with ShardRouter(config=config) as router:
            tickets = [router.submit(r) for r in requests]
            router.kill_shard(0)
            statuses = {t.result(60.0).status for t in tickets}
            late = router.submit(requests[0]).result(10.0)
        # Every ticket still resolves terminally; nothing hangs.
        assert statuses <= {"ok", "failed", "shed"}
        assert late.status == "shed"

    def test_respawned_shard_rejoins_the_ring(self):
        import time

        config = small_config(respawn=True)
        requests = synthetic_requests(4, n_signatures=2, seed=26)
        with ShardRouter(config=config) as router:
            for t in [router.submit(r) for r in requests]:
                assert t.result(60.0).status == "ok"
            router.kill_shard(1)
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                doc = router.metrics_json()
                if (doc["router"]["respawns"] >= 1
                        and doc["router"]["live_shards"] == 2):
                    break
                time.sleep(0.2)
            assert doc["router"]["respawns"] >= 1
            assert doc["router"]["live_shards"] == 2
            for t in [router.submit(r) for r in requests]:
                assert t.result(60.0).status == "ok"


class TestWarmStart:
    def test_plan_caches_warm_across_restarts(self, tmp_path):
        cache_dir = str(tmp_path / "caches")
        config = small_config(cache_dir=cache_dir)
        requests = synthetic_requests(6, n_signatures=3, seed=27)
        with ShardRouter(config=config) as router:
            for t in [router.submit(r) for r in requests]:
                assert t.result(60.0).status == "ok"
        # Fresh processes, same cache_dir: shards report warm entries
        # and the first recurrence of each signature is already a hit.
        with ShardRouter(config=config) as router:
            doc = router.metrics_json()
            warm = doc["router"]["warm_entries"]
            assert sum(warm.values()) >= 3
            for t in [router.submit(r) for r in requests]:
                assert t.result(60.0).status == "ok"
            doc = router.metrics_json()
        runtime = doc["aggregate"]["runtime"]
        assert runtime["plan_cache_misses"] == 0
        assert runtime["plan_cache_hits"] == len(requests)


class TestConfigValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigError):
            ShardedConfig(n_shards=0)
        with pytest.raises(ConfigError):
            ShardedConfig(max_in_flight=0)
        with pytest.raises(ConfigError):
            ShardedConfig(max_retries=-1)

    def test_oversubscription_is_a_warning_not_an_error(self):
        config = ShardedConfig(
            n_shards=64, service=ServiceConfig(n_workers=4)
        )
        router = ShardRouter(config=config)  # never started
        assert any(
            d.code == "FSTC304" for d in router.config_diagnostics
        )


class TestInterruptSafety:
    """Regression: `serve --demo` used to leak spawned shard processes
    when a KeyboardInterrupt landed during startup — the CLI's context
    manager never ran __exit__ for an exception raised inside start().
    The CLI now calls close() from a finally block, and close() must
    reap every child no matter where the interrupt landed."""

    class _InterruptingEvent:
        """Stands in for a shard's ready event; the wait is where a
        Ctrl-C lands in the leaked-process scenario."""

        def wait(self, timeout=None):
            raise KeyboardInterrupt

        def clear(self):
            pass

        def set(self):
            pass

        def is_set(self):
            return False

    def test_interrupt_during_start_reaps_all_shards(self):
        router = ShardRouter(machine=DESKTOP, config=small_config())
        router._shards[1].ready = self._InterruptingEvent()
        with pytest.raises(KeyboardInterrupt):
            router.start()
        for shard in router._shards.values():
            assert shard.process is None or not shard.process.is_alive(), (
                f"shard {shard.shard_id} leaked its process"
            )
        assert not router.running
        router.close()  # the CLI's finally must be safe to run after

    def test_close_before_start_is_safe_and_idempotent(self):
        router = ShardRouter(machine=DESKTOP, config=small_config())
        router.close()
        router.close()
        assert not router.running

    def test_close_after_normal_start_reaps_processes(self):
        router = ShardRouter(machine=DESKTOP, config=small_config())
        router.start()
        processes = [s.process for s in router._shards.values()]
        assert all(p is not None and p.is_alive() for p in processes)
        router.close()
        assert all(not p.is_alive() for p in processes)
        router.close()  # idempotent

    def test_service_close_stops_and_is_idempotent(self):
        from repro.serve import ContractionService

        service = ContractionService(machine=DESKTOP, config=SERVICE)
        service.start()
        assert service.running
        service.close()
        assert not service.running
        service.close()
        # A closed queue sheds new arrivals instead of hanging them.
        ticket = service.submit(synthetic_requests(1, n_signatures=1, seed=3)[0])
        assert ticket.result(5.0).status == "shed"
