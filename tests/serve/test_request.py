"""Unit tests for the serve request/response/ticket vocabulary."""

import threading

import pytest

from repro.data.random_tensors import random_coo
from repro.errors import ConfigError, SchedulerError
from repro.machine.specs import DESKTOP
from repro.serve import (
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_SHED,
    TERMINAL_STATUSES,
    Request,
    Response,
    Ticket,
)


@pytest.fixture
def operands():
    a = random_coo((10, 8), nnz=20, seed=1)
    b = random_coo((8, 6), nnz=15, seed=2)
    return a, b


class TestRequest:
    def test_pairwise_fields(self, operands):
        a, b = operands
        req = Request.pairwise(a, b, [(1, 0)], name="r", priority=3,
                               deadline_s=0.5)
        assert req.kind == "pairwise"
        assert req.pairs == ((1, 0),)
        assert req.priority == 3
        assert req.deadline_s == 0.5

    def test_network_fields(self, operands):
        a, b = operands
        req = Request.network("ij,jk->ik", a, b, name="n")
        assert req.kind == "network"
        assert req.operands == (a, b)

    def test_nonpositive_deadline_rejected(self, operands):
        a, b = operands
        with pytest.raises(ConfigError):
            Request.pairwise(a, b, [(1, 0)], deadline_s=0.0)
        with pytest.raises(ConfigError):
            Request.network("ij,jk->ik", a, b, deadline_s=-1.0)

    def test_network_needs_operands(self):
        with pytest.raises(ConfigError):
            Request.network("ij->ij")

    def test_requests_are_immutable(self, operands):
        a, b = operands
        req = Request.pairwise(a, b, [(1, 0)])
        with pytest.raises(AttributeError):
            req.priority = 9


class TestAffinityKey:
    def test_same_structure_same_key(self, operands):
        a, b = operands
        k1 = Request.pairwise(a, b, [(1, 0)], name="x").affinity_key(DESKTOP)
        k2 = Request.pairwise(a, b, [(1, 0)], name="y").affinity_key(DESKTOP)
        assert k1 == k2

    def test_different_structure_different_key(self, operands):
        a, b = operands
        c = random_coo((8, 6), nnz=30, seed=3)  # different nnz
        k1 = Request.pairwise(a, b, [(1, 0)]).affinity_key(DESKTOP)
        k2 = Request.pairwise(a, c, [(1, 0)]).affinity_key(DESKTOP)
        assert k1 != k2

    def test_network_key_is_stable(self, operands):
        a, b = operands
        k1 = Request.network("ij,jk->ik", a, b).affinity_key(DESKTOP)
        k2 = Request.network("ij,jk->ik", a, b).affinity_key(DESKTOP)
        assert k1 == k2


class TestResponse:
    def test_ok_property(self):
        assert Response(name="r", status=STATUS_OK).ok
        assert Response(name="r", status=STATUS_DEGRADED).ok
        assert not Response(name="r", status=STATUS_SHED).ok

    def test_terminal_statuses_cover_the_vocabulary(self):
        assert set(TERMINAL_STATUSES) == {
            "ok", "degraded", "shed", "timeout", "failed",
        }


class TestTicket:
    def test_first_resolution_wins(self):
        ticket = Ticket()
        ticket.resolve(Response(name="a", status=STATUS_OK))
        ticket.resolve(Response(name="b", status=STATUS_SHED))
        assert ticket.done()
        assert ticket.result().name == "a"

    def test_wait_timeout_raises(self):
        ticket = Ticket()
        with pytest.raises(SchedulerError):
            ticket.result(timeout=0.01)

    def test_result_unblocks_on_resolve(self):
        ticket = Ticket()
        timer = threading.Timer(
            0.02, ticket.resolve, [Response(name="r", status=STATUS_OK)]
        )
        timer.start()
        assert ticket.result(timeout=5.0).status == STATUS_OK
        timer.join()
