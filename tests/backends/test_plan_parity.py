"""Per-backend golden Algorithm 7 plan parity.

The backend executes a plan; it must never influence which plan the
planner picks (otherwise the plan cache — keyed without the backend —
would replay wrong decisions).  Running registry cases through the
runtime under every backend must reproduce the frozen golden decisions
of ``tests/data/algorithm7_plans.json`` bit for bit.
"""

import json
import os

import pytest

from repro.data.registry import all_cases
from repro.machine.specs import DESKTOP
from repro.runtime.executor import ContractionRuntime

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "data", "algorithm7_plans.json"
)

#: Small registry cases (by nnz) — enough to cover both accumulator
#: kinds and non-default tile sizes without dominating the suite.
PARITY_CASES = ("G-ovov", "C-ovov", "chic_01", "chic_123", "NIPS_23")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def test_parity_cases_cover_both_accumulators(golden):
    kinds = {golden[name]["desktop"]["accumulator"] for name in PARITY_CASES}
    assert kinds == {"dense", "sparse"}


@pytest.mark.parametrize("case_name", PARITY_CASES)
def test_plan_matches_golden_under_every_backend(
    backend_name, case_name, golden
):
    left, right, pairs = all_cases()[case_name].load()
    runtime = ContractionRuntime(machine=DESKTOP, backend=backend_name)
    out, record = runtime.contract(
        left, right, pairs, name=case_name, return_record=True
    )
    frozen = golden[case_name]["desktop"]
    assert record.accumulator == frozen["accumulator"], (
        f"{case_name} under backend={backend_name}: accumulator decision "
        f"drifted from the golden plan"
    )
    assert record.tile == frozen["tile_l"], (
        f"{case_name} under backend={backend_name}: tile size drifted "
        f"from the golden plan"
    )
    assert record.backend == backend_name
    assert out.nnz == record.output_nnz
