"""Registry behavior: discovery, selection precedence, the auto policy."""

import numpy as np
import pytest

from repro.backends import (
    AUTO_DENSITY_CEILING,
    ENV_VAR,
    KernelBackend,
    available_backends,
    backend_status,
    choose_backend,
    choose_backend_for_densities,
    get_backend,
    known_backends,
    resolve_backend,
)
from repro.errors import BackendError


def test_builtin_backends_registered():
    names = known_backends()
    assert {"numpy", "scipy", "arrayapi"} <= set(names)
    assert names == sorted(names)


def test_numpy_always_available():
    assert "numpy" in available_backends()
    status = backend_status()
    ok, reason = status["numpy"]
    assert ok and reason


def test_backend_status_has_reason_for_every_backend():
    for name, (ok, reason) in backend_status().items():
        assert isinstance(ok, bool)
        assert reason, f"backend {name} reported no detection reason"


def test_get_backend_unknown_name():
    with pytest.raises(BackendError, match="unknown backend"):
        get_backend("cuda-magic")


def test_get_backend_is_cached():
    assert get_backend("numpy") is get_backend("numpy")


def test_resolve_default_is_numpy(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert resolve_backend(None).name == "numpy"


def test_resolve_env_var_supplies_default(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "arrayapi")
    if "arrayapi" not in available_backends():
        pytest.skip("array-API backend unavailable here")
    assert resolve_backend(None).name == "arrayapi"


def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "arrayapi")
    assert resolve_backend("numpy").name == "numpy"


def test_resolve_instance_passthrough():
    instance = get_backend("numpy")
    assert resolve_backend(instance) is instance


def test_resolve_unavailable_reports_reason():
    unavailable = [
        name for name, (ok, _) in backend_status().items() if not ok
    ]
    if not unavailable:
        pytest.skip("every registered backend is available on this host")
    with pytest.raises(BackendError, match="not available"):
        get_backend(unavailable[0])


class _Sig:
    """Duck-typed stand-in for ProblemSignature's density fields."""

    def __init__(self, dl, dr):
        self.density_l = dl
        self.density_r = dr


def test_auto_without_signature_is_numpy():
    assert choose_backend(None).name == "numpy"


def test_auto_routes_sparse_problems_to_scipy():
    picked = choose_backend_for_densities(1e-4, 1e-4)
    if "scipy" in available_backends():
        assert picked.name == "scipy"
    else:
        assert picked.name == "numpy"


def test_auto_keeps_dense_problems_on_numpy():
    dense = 10 * AUTO_DENSITY_CEILING
    assert choose_backend_for_densities(dense, dense).name == "numpy"
    assert choose_backend_for_densities(1e-4, dense).name == "numpy"


def test_auto_respects_signature_densities():
    picked = resolve_backend("auto", signature=_Sig(1e-4, 1e-4))
    expected = "scipy" if "scipy" in available_backends() else "numpy"
    assert picked.name == expected
    assert resolve_backend("auto", signature=_Sig(0.9, 0.9)).name == "numpy"


def test_register_backend_requires_name():
    from repro.backends import register_backend

    class Nameless(KernelBackend):
        pass

    with pytest.raises(BackendError, match="needs a name"):
        register_backend(Nameless)


def test_contract_accepts_backend_names(backend_name):
    """Smoke: the public contract() entry accepts every detected name."""
    from repro import COOTensor, contract

    rng = np.random.default_rng(7)
    coords = rng.integers(0, 4, size=(2, 6)).astype(np.int64)
    values = rng.uniform(-1, 1, size=6)
    t = COOTensor(coords, values, (4, 4))
    out = contract(t, t, [(1, 1)], backend=backend_name)
    reference = contract(t, t, [(1, 1)])
    np.testing.assert_allclose(
        out.to_dense(), reference.to_dense(), rtol=1e-8, atol=1e-10
    )
