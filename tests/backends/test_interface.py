"""Differential unit tests of every kernel op against the reference.

Each op runs on every detected backend and must agree with the
``numpy`` reference backend on the same inputs — elementwise ops
bit-identically, reductions to the documented ``rtol=1e-8`` (the
array-API backend reassociates segment sums; see ``docs/backends.md``).
"""

import numpy as np
import pytest

from repro.backends import KernelBackend, get_backend
from repro.errors import BackendError
from repro.util.arrays import INDEX_DTYPE, VALUE_DTYPE

REFERENCE = get_backend("numpy")

RNG = np.random.default_rng(0xFA57)


def _as_np(backend, arr):
    return np.asarray(backend.to_numpy(arr))


def test_gather_matches_fancy_index(backend):
    arr = RNG.uniform(-3, 3, size=40).astype(VALUE_DTYPE)
    idx = RNG.integers(0, 40, size=17).astype(INDEX_DTYPE)
    out = _as_np(backend, backend.gather(backend.asarray(arr), backend.asarray(idx)))
    np.testing.assert_array_equal(out, arr[idx])


def test_gather_empty(backend):
    arr = np.arange(5, dtype=VALUE_DTYPE)
    idx = np.empty(0, dtype=INDEX_DTYPE)
    out = _as_np(backend, backend.gather(backend.asarray(arr), backend.asarray(idx)))
    assert out.shape == (0,)


@pytest.mark.parametrize("n", [0, 1, 7, 200])
def test_scatter_accumulate_matches_add_at(backend, n):
    cells = 16
    positions = RNG.integers(0, cells, size=n).astype(INDEX_DTYPE)
    values = RNG.uniform(-2, 2, size=n).astype(VALUE_DTYPE)

    expected = np.zeros(cells, dtype=VALUE_DTYPE)
    np.add.at(expected, positions, values)

    buf = backend.zeros(cells, dtype=VALUE_DTYPE)
    touched = backend.scatter_accumulate(
        buf, backend.asarray(positions), backend.asarray(values),
        return_touched=True,
    )
    np.testing.assert_allclose(_as_np(backend, buf), expected, rtol=1e-8, atol=1e-12)
    touched_np = np.asarray(backend.to_numpy(touched)) if touched is not None \
        else np.empty(0, dtype=INDEX_DTYPE)
    np.testing.assert_array_equal(touched_np, np.unique(positions))


def test_scatter_accumulate_scalar_broadcast(backend):
    cells = 10
    positions = np.array([3, 3, 7, 0, 3], dtype=INDEX_DTYPE)
    buf = backend.zeros(cells, dtype=VALUE_DTYPE)
    backend.scatter_accumulate(buf, backend.asarray(positions), 1.0)
    expected = np.zeros(cells, dtype=VALUE_DTYPE)
    np.add.at(expected, positions, 1.0)
    np.testing.assert_allclose(_as_np(backend, buf), expected, rtol=1e-12)


def test_gemm_slices_matches_matmul_2d(backend):
    a = RNG.uniform(-1, 1, size=(9, 5)).astype(VALUE_DTYPE)
    b = RNG.uniform(-1, 1, size=(5, 11)).astype(VALUE_DTYPE)
    out = _as_np(backend, backend.gemm_slices(backend.asarray(a), backend.asarray(b)))
    np.testing.assert_allclose(out, a @ b, rtol=1e-10, atol=1e-12)


def test_gemm_slices_matches_matmul_batched(backend):
    a = RNG.uniform(-1, 1, size=(4, 6, 3)).astype(VALUE_DTYPE)
    b = RNG.uniform(-1, 1, size=(4, 3, 5)).astype(VALUE_DTYPE)
    out = _as_np(backend, backend.gemm_slices(backend.asarray(a), backend.asarray(b)))
    np.testing.assert_allclose(out, a @ b, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("n", [0, 1, 9, 300])
def test_hash_accumulate_matches_segment_sum(backend, n):
    keys = RNG.integers(0, 12, size=n).astype(INDEX_DTYPE)
    values = RNG.uniform(-2, 2, size=n).astype(VALUE_DTYPE)

    ref_keys, ref_sums = REFERENCE.hash_accumulate(keys, values)
    out_keys, out_sums = backend.hash_accumulate(
        backend.asarray(keys), backend.asarray(values)
    )
    np.testing.assert_array_equal(_as_np(backend, out_keys), ref_keys)
    np.testing.assert_allclose(
        _as_np(backend, out_sums), ref_sums, rtol=1e-8, atol=1e-12
    )


def test_hash_accumulate_unique_keys_sorted(backend):
    keys = np.array([9, 1, 9, 4, 1, 1], dtype=INDEX_DTYPE)
    values = np.ones(6, dtype=VALUE_DTYPE)
    out_keys, out_sums = backend.hash_accumulate(
        backend.asarray(keys), backend.asarray(values)
    )
    np.testing.assert_array_equal(_as_np(backend, out_keys), [1, 4, 9])
    np.testing.assert_allclose(_as_np(backend, out_sums), [3.0, 1.0, 2.0])


def test_dense_reduce_matches_sum(backend):
    arr = RNG.uniform(-5, 5, size=64).astype(VALUE_DTYPE)
    assert backend.dense_reduce(backend.asarray(arr)) == pytest.approx(
        float(arr.sum()), rel=1e-10
    )


def test_multiply_matches_elementwise(backend):
    a = RNG.uniform(-2, 2, size=33).astype(VALUE_DTYPE)
    b = RNG.uniform(-2, 2, size=33).astype(VALUE_DTYPE)
    out = _as_np(backend, backend.multiply(backend.asarray(a), backend.asarray(b)))
    np.testing.assert_array_equal(out, a * b)


def test_zeros_asarray_to_numpy_roundtrip(backend):
    buf = backend.zeros(6, dtype=VALUE_DTYPE)
    np.testing.assert_array_equal(
        _as_np(backend, buf), np.zeros(6, dtype=VALUE_DTYPE)
    )
    arr = np.array([1.5, -2.0, 0.0], dtype=VALUE_DTYPE)
    np.testing.assert_array_equal(_as_np(backend, backend.asarray(arr)), arr)


def test_require_available_raises_with_reason():
    class Unavailable(KernelBackend):
        name = "definitely-missing"

        @classmethod
        def detect(cls):
            return False, "the frobnicator is not installed"

    with pytest.raises(BackendError, match="frobnicator"):
        Unavailable().require_available()
