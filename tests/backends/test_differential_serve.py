"""Serve fuzz mode, per backend: a service configured with a backend
must return exactly what the direct call with the same backend returns
(scheduling adds no arithmetic), and stay within tolerance of the
numpy reference."""

import numpy as np
import pytest

from repro import COOTensor, contract
from repro.machine.specs import DESKTOP
from repro.serve import ContractionService, Request, ServiceConfig
from repro.errors import ConfigError


def _self_problem(seed):
    """Seeded self-contraction problem (mirrors the integration fuzz
    strategy without hypothesis, so the backend fixture parameterizes
    cleanly)."""
    rng = np.random.default_rng(0x5E4E + seed)
    ndim = int(rng.integers(2, 5))
    shape = tuple(int(rng.integers(1, 6)) for _ in range(ndim))
    cells = int(np.prod(shape))
    nnz = int(rng.integers(0, min(18, cells) + 1))
    coords = np.array(
        [rng.integers(0, e, size=nnz) for e in shape], dtype=np.int64
    ).reshape(ndim, nnz)
    values = rng.uniform(-6, 6, size=nnz)
    tensor = COOTensor(coords, values, shape)
    n_contracted = int(rng.integers(1, ndim))
    modes = sorted(rng.permutation(ndim)[:n_contracted].tolist())
    return tensor, [(int(m), int(m)) for m in modes]


@pytest.mark.parametrize("seed", range(8))
def test_served_bit_identical_to_direct_same_backend(backend_name, seed):
    tensor, pairs = _self_problem(seed)
    direct = contract(tensor, tensor, pairs, backend=backend_name)
    config = ServiceConfig(
        queue_capacity=8, policy="block", n_workers=1, backend=backend_name,
    )
    with ContractionService(machine=DESKTOP, config=config) as svc:
        response = svc.call(Request.pairwise(tensor, tensor, pairs), timeout=60.0)
    assert response.ok, (backend_name, seed, response.detail)
    np.testing.assert_array_equal(
        response.result.coords, direct.coords,
        err_msg=f"backend={backend_name} seed={seed}",
    )
    np.testing.assert_array_equal(
        response.result.values, direct.values,
        err_msg=f"backend={backend_name} seed={seed}",
    )


@pytest.mark.parametrize("seed", range(8))
def test_served_matches_numpy_reference(backend_name, seed):
    """Cross-backend: any served backend agrees with the numpy
    reference through dense reconstruction (tolerance policy of
    docs/backends.md)."""
    tensor, pairs = _self_problem(seed)
    reference = contract(tensor, tensor, pairs)
    config = ServiceConfig(
        queue_capacity=8, policy="block", n_workers=1, backend=backend_name,
    )
    with ContractionService(machine=DESKTOP, config=config) as svc:
        response = svc.call(Request.pairwise(tensor, tensor, pairs), timeout=60.0)
    assert response.ok, response.detail
    np.testing.assert_allclose(
        response.result.to_dense(), reference.to_dense(),
        rtol=1e-8, atol=1e-10,
        err_msg=f"backend={backend_name} seed={seed}",
    )


def test_service_config_rejects_unknown_backend():
    with pytest.raises(ConfigError, match="backend"):
        ServiceConfig(backend="not-a-backend")


def test_service_config_accepts_auto():
    config = ServiceConfig(backend="auto")
    assert config.backend == "auto"
