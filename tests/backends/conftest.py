"""Fixtures parameterizing differential tests over every backend.

Every test taking ``backend_name`` (or ``backend``) runs once per
*registered* backend; backends that fail feature detection on this host
(scipy not installed, no array-API namespace, …) skip cleanly with the
detection reason, so the suite reports exactly which substrates were
exercised rather than silently shrinking.
"""

import pytest

from repro.backends import backend_status, get_backend, known_backends


@pytest.fixture(params=known_backends())
def backend_name(request):
    """Each registered backend name, skipping the undetected ones."""
    available, reason = backend_status()[request.param]
    if not available:
        pytest.skip(f"backend {request.param!r} unavailable: {reason}")
    return request.param


@pytest.fixture
def backend(backend_name):
    """The detected backend instance for ``backend_name``."""
    return get_backend(backend_name)
