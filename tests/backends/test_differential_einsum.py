"""The 220-case einsum fuzzer, re-run against every detected backend.

Reuses the seeded generator from the integration suite so every backend
sees the exact expressions the reference is validated on.  Assertions
follow the tolerance policy of ``docs/backends.md``:

* ``numpy`` — bit-identical to the default path (it *is* the default);
* ``scipy``/``arrayapi`` — dense reconstruction to ``rtol=1e-8``
  (SpGEMM and cumulative-sum segment reduction reassociate float adds,
  and the array-API dense fast path drops exact-zero cells).
"""

import numpy as np
import pytest

from repro import einsum
from repro.machine.specs import DESKTOP, SERVER

from tests.integration.test_properties import (
    FUZZ_CASES_PER_MACHINE,
    FUZZ_OPTIMIZERS,
    _random_einsum_problem,
)

MACHINES = {"desktop": DESKTOP, "server": SERVER}
N_BATCHES = 5


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("batch", range(N_BATCHES))
def test_einsum_fuzz_against_oracle(backend_name, machine_name, batch):
    """Every backend must agree with the numpy.einsum dense oracle on
    the full fuzz corpus (110 seeds x 2 machines)."""
    machine = MACHINES[machine_name]
    per_batch = FUZZ_CASES_PER_MACHINE // N_BATCHES
    for k in range(per_batch):
        seed = batch * per_batch + k
        expr, operands = _random_einsum_problem(seed)
        optimizer = FUZZ_OPTIMIZERS[seed % len(FUZZ_OPTIMIZERS)]
        expected = np.einsum(expr, *[t.to_dense() for t in operands])
        out = einsum(
            expr, *operands, machine=machine, optimize=optimizer,
            backend=backend_name,
        )
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-10,
            err_msg=(
                f"backend={backend_name} seed={seed} expr={expr} "
                f"machine={machine.name} optimizer={optimizer}"
            ),
        )


@pytest.mark.parametrize("batch", range(N_BATCHES))
def test_numpy_backend_is_bit_identical_to_default(batch):
    """Selecting backend="numpy" explicitly must not change one bit
    relative to the implicit default — it is the same code."""
    per_batch = FUZZ_CASES_PER_MACHINE // N_BATCHES
    for k in range(per_batch):
        seed = batch * per_batch + k
        expr, operands = _random_einsum_problem(seed)
        optimizer = FUZZ_OPTIMIZERS[seed % len(FUZZ_OPTIMIZERS)]
        default = einsum(expr, *operands, optimize=optimizer)
        explicit = einsum(expr, *operands, optimize=optimizer, backend="numpy")
        np.testing.assert_array_equal(
            default.coords, explicit.coords, err_msg=f"seed={seed} {expr}"
        )
        np.testing.assert_array_equal(
            default.values, explicit.values, err_msg=f"seed={seed} {expr}"
        )


def test_auto_backend_matches_oracle():
    """backend="auto" (per-problem scipy/numpy routing) stays correct
    across the corpus sample regardless of which backend each pairwise
    step lands on."""
    for seed in range(0, FUZZ_CASES_PER_MACHINE, 7):
        expr, operands = _random_einsum_problem(seed)
        expected = np.einsum(expr, *[t.to_dense() for t in operands])
        out = einsum(expr, *operands, backend="auto")
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-10,
            err_msg=f"seed={seed} expr={expr}",
        )
