"""Network fuzzer, per backend: multi-operand plans through
``contract_network`` and the shared executor must match the dense
oracle on every detected backend."""

import numpy as np
import pytest

from repro.machine.specs import DESKTOP
from repro.network.executor import contract_network

from tests.integration.test_properties import (
    FUZZ_CASES_PER_MACHINE,
    _random_einsum_problem,
)


def _multi_operand_seeds(minimum=25):
    """Fuzz seeds whose expression has 3+ operands (true network plans,
    not single pairwise steps)."""
    seeds = []
    for seed in range(FUZZ_CASES_PER_MACHINE):
        expr, _ = _random_einsum_problem(seed)
        if expr.split("->")[0].count(",") >= 2:
            seeds.append(seed)
        if len(seeds) >= minimum:
            break
    return seeds


NETWORK_SEEDS = _multi_operand_seeds()


def test_generator_yields_enough_network_cases():
    assert len(NETWORK_SEEDS) >= 25


@pytest.mark.parametrize("optimizer", ["greedy", "sparsity"])
def test_network_fuzz_against_oracle(backend_name, optimizer):
    for seed in NETWORK_SEEDS:
        expr, operands = _random_einsum_problem(seed)
        expected = np.einsum(expr, *[t.to_dense() for t in operands])
        out = contract_network(
            expr, *operands, machine=DESKTOP, optimizer=optimizer,
            backend=backend_name,
        )
        np.testing.assert_allclose(
            out.to_dense(), expected, rtol=1e-8, atol=1e-10,
            err_msg=f"backend={backend_name} seed={seed} expr={expr}",
        )


def test_network_report_names_backend_runs(backend_name):
    """The execution report's pairwise step records must carry the
    backend that actually ran each step (outer products stay numpy)."""
    for seed in NETWORK_SEEDS:
        expr, operands = _random_einsum_problem(seed)
        out, report = contract_network(
            expr, *operands, machine=DESKTOP, optimizer="greedy",
            backend=backend_name, return_report=True,
        )
        assert out is not None
        pairwise = [s for s in report.steps if s.kind == "contract"]
        if pairwise:
            assert all(s.backend == backend_name for s in pairwise)
            return
    pytest.skip("no fuzz seed produced a pairwise step (generator drifted)")
