"""Calibration tests: predictions must tighten toward measurements."""

import numpy as np
import pytest

from repro.machine.cost_model import (
    DEFAULT_WEIGHTS,
    AccessCostModel,
    CostWeights,
    ProblemShape,
    fit_cost_weights,
)
from repro.machine.specs import DESKTOP
from repro.runtime import ContractionRuntime
from repro.runtime.calibrator import CostCalibrator, CostSample


class TestCostWeights:
    def test_defaults_match_class_constants(self):
        w = DEFAULT_WEIGHTS
        assert w.query_cost == AccessCostModel.QUERY_COST
        assert w.element_cost == AccessCostModel.ELEMENT_COST
        assert w.update_hit_cost == AccessCostModel.UPDATE_HIT_COST
        assert w.update_miss_cost == AccessCostModel.UPDATE_MISS_COST

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(query_cost=-1.0)

    def test_scaled(self):
        w = DEFAULT_WEIGHTS.scaled(2.0)
        assert w.query_cost == 2 * DEFAULT_WEIGHTS.query_cost
        assert w.ghz == DEFAULT_WEIGHTS.ghz

    def test_model_uses_injected_weights(self):
        shape = ProblemShape(L=100, R=100, C=50, nnz_L=500, nnz_R=500)
        base = AccessCostModel(shape, DESKTOP)
        doubled = AccessCostModel(shape, DESKTOP,
                                  weights=DEFAULT_WEIGHTS.scaled(2.0))
        est = base.co()
        t1 = base.estimated_seconds(est, 1000.0)
        t2 = doubled.estimated_seconds(est, 1000.0)
        assert t2 == pytest.approx(2 * t1)


class TestFit:
    def test_scale_fit_recovers_known_factor(self):
        # Synthetic machine exactly 5x slower than the base assumptions.
        rng = np.random.default_rng(7)
        samples, seconds = [], []
        for _ in range(3):
            q, v, u = rng.uniform(1e3, 1e6, size=3)
            samples.append((q, v, u, True))
            seconds.append(5.0 * DEFAULT_WEIGHTS.seconds(
                q, v, u, workspace_fits=True))
        fitted = fit_cost_weights(samples, seconds)
        assert fitted.query_cost == pytest.approx(
            5.0 * DEFAULT_WEIGHTS.query_cost, rel=1e-9)

    def test_full_fit_recovers_weights(self):
        truth = CostWeights(query_cost=45.0, element_cost=2.0,
                            update_hit_cost=3.0, update_miss_cost=90.0)
        rng = np.random.default_rng(11)
        samples, seconds = [], []
        for k in range(12):
            q, v, u = rng.uniform(1e3, 1e6, size=3)
            fits = bool(k % 2)
            samples.append((q, v, u, fits))
            seconds.append(truth.seconds(q, v, u, workspace_fits=fits))
        fitted = fit_cost_weights(samples, seconds)
        assert fitted.query_cost == pytest.approx(truth.query_cost, rel=1e-6)
        assert fitted.element_cost == pytest.approx(truth.element_cost, rel=1e-6)
        assert fitted.update_hit_cost == pytest.approx(
            truth.update_hit_cost, rel=1e-6)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_cost_weights([], [])


class TestCalibratorAcceptance:
    def test_one_pass_on_registry_case_shrinks_error(self):
        """Acceptance criterion: after one calibration pass on a registry
        case, predicted-vs-measured error shrinks vs the uncalibrated
        DESKTOP spec."""
        from repro.data.registry import get_case

        left, right, pairs = get_case("uber_123").load()
        runtime = ContractionRuntime(machine=DESKTOP, calibrate=True)
        for _ in range(3):
            runtime.contract(left, right, pairs)
        calibrator = runtime.calibrator
        assert calibrator.samples, "instrumented runs must produce samples"
        calibrator.fit()
        uncalibrated, calibrated = calibrator.improvement()
        assert calibrated < uncalibrated
        # The scale fit must land predictions within the measured order
        # of magnitude (the uncalibrated constants are off by >10x on
        # this pure-Python host).
        assert calibrated < 1.0

    def test_refit_every_auto_fits(self):
        sample = CostSample(1e4, 1e5, 1e5, True, 0.01)
        cal = CostCalibrator(machine=DESKTOP, refit_every=2)
        assert cal.weights is None
        for plan_stats in range(2):
            cal.samples.append(sample)
        # observe() drives the cadence; emulate it through fit directly.
        cal.fit()
        assert cal.weights is not None
        assert cal.calibrated is cal.weights

    def test_model_for_carries_calibration(self):
        cal = CostCalibrator(machine=DESKTOP)
        cal.samples.append(CostSample(1e4, 1e5, 1e5, True, 0.5))
        cal.fit()
        shape = ProblemShape(L=100, R=100, C=50, nnz_L=500, nnz_R=500)
        model = cal.model_for(shape)
        assert model.weights == cal.calibrated
        assert model.weights != DEFAULT_WEIGHTS


class TestSampleHygiene:
    """Corrupt measurements must never reach (or poison) the fit."""

    def _observe(self, cal, seconds):
        from types import SimpleNamespace

        plan = SimpleNamespace(tile_l=32, tile_r=32)
        stats = SimpleNamespace(kernel_seconds=seconds)
        counters = SimpleNamespace(
            hash_queries=1e4, data_volume=1e5, accum_updates=1e5)
        return cal.observe(plan, stats, counters)

    @pytest.mark.parametrize(
        "seconds", [float("nan"), float("inf"), -float("inf"), 0.0, -0.5])
    def test_observe_rejects_bad_timings(self, seconds):
        cal = CostCalibrator(machine=DESKTOP)
        sample = self._observe(cal, seconds)
        assert not sample.usable
        assert cal.samples == []

    def test_observe_rejects_nonfinite_counters(self):
        from types import SimpleNamespace

        cal = CostCalibrator(machine=DESKTOP)
        plan = SimpleNamespace(tile_l=32, tile_r=32)
        stats = SimpleNamespace(kernel_seconds=0.01)
        counters = SimpleNamespace(
            hash_queries=float("inf"), data_volume=1e5, accum_updates=1e5)
        cal.observe(plan, stats, counters)
        assert cal.samples == []

    def test_all_zero_features_not_usable(self):
        assert not CostSample(0.0, 0.0, 0.0, True, 0.01).usable

    def test_fit_skips_directly_appended_corrupt_samples(self):
        cal = CostCalibrator(machine=DESKTOP)
        cal.samples.append(CostSample(1e4, 1e5, 1e5, True, 0.01))
        cal.samples.append(CostSample(1e4, 1e5, 1e5, True, float("nan")))
        cal.samples.append(
            CostSample(float("inf"), 1e5, 1e5, True, 0.01))
        fitted = cal.fit()
        assert all(np.isfinite([
            fitted.query_cost, fitted.element_cost,
            fitted.update_hit_cost, fitted.update_miss_cost,
        ]))
        # relative_errors must skip the corrupt rows too.
        assert len(cal.relative_errors()) == 1

    def test_fit_with_no_usable_samples_raises(self):
        cal = CostCalibrator(machine=DESKTOP)
        with pytest.raises(ValueError):
            cal.fit()
        cal.samples.append(CostSample(1e4, 1e5, 1e5, True, float("nan")))
        with pytest.raises(ValueError):
            cal.fit()
        assert cal.weights is None
        assert cal.calibrated is cal.base


class TestDegenerateFits:
    """Zero, one, and rank-deficient sample sets must stay well-posed."""

    def test_single_sample_scale_fit(self):
        sample = (1e4, 1e5, 1e5, True)
        truth = 3.0 * DEFAULT_WEIGHTS.seconds(*sample[:3],
                                              workspace_fits=True)
        fitted = fit_cost_weights([sample], [truth])
        assert fitted.query_cost == pytest.approx(
            3.0 * DEFAULT_WEIGHTS.query_cost)

    def test_identical_samples_fall_back_to_scale(self):
        # >= 4 samples but a rank-1 design matrix: the full refit must
        # decline and return the (well-posed) scale fit.
        sample = (1e4, 1e5, 1e5, True)
        t = 2.0 * DEFAULT_WEIGHTS.seconds(*sample[:3], workspace_fits=True)
        fitted = fit_cost_weights([sample] * 6, [t] * 6)
        assert fitted.query_cost == pytest.approx(
            2.0 * DEFAULT_WEIGHTS.query_cost)
        assert fitted.element_cost == pytest.approx(
            2.0 * DEFAULT_WEIGHTS.element_cost)

    def test_zero_feature_rows_yield_base_weights(self):
        fitted = fit_cost_weights([(0.0, 0.0, 0.0, True)], [0.01])
        assert fitted.query_cost == DEFAULT_WEIGHTS.query_cost

    def test_nonfinite_measurement_cannot_blow_up_alpha(self):
        fitted = fit_cost_weights(
            [(1e4, 1e5, 1e5, True)], [float("nan")])
        assert np.isfinite(fitted.query_cost)
        assert fitted.query_cost == DEFAULT_WEIGHTS.query_cost
