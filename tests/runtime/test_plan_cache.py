"""Unit tests for the plan cache and its structural signatures."""

import json

import numpy as np
import pytest

from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP, SERVER
from repro.runtime.plan_cache import CachedPlan, PlanCache
from repro.runtime.signature import ProblemSignature, signature_for
from repro.tensors.coo import COOTensor


def make_plan(L=64, R=64, C=32, nnz=200):
    spec = ContractionSpec((L, C), (C, R), [(1, 0)])
    return spec, choose_plan(spec, nnz, nnz, DESKTOP)


def sig(n=0, machine=DESKTOP, nnz=50):
    """A distinct signature per n (varying an extent)."""
    return ProblemSignature(
        left_shape=(16 + n, 8),
        right_shape=(8, 12),
        pairs=((1, 0),),
        nnz_l=nnz,
        nnz_r=nnz,
        machine=(machine.name, machine.n_cores, machine.l3_bytes,
                 machine.l2_bytes_per_core, machine.word_bytes),
    )


class TestSignature:
    def test_same_problem_same_key(self):
        a = random_coo((10, 6, 8), nnz=40, seed=1)
        b = random_coo((8, 5), nnz=20, seed=2)
        s1 = signature_for(a, b, [(2, 0)], DESKTOP)
        s2 = signature_for(a, b, [(2, 0)], DESKTOP)
        assert s1 == s2
        assert s1.key == s2.key

    def test_permuted_coordinates_same_key(self):
        a = random_coo((10, 6, 8), nnz=40, seed=1)
        rng = np.random.default_rng(0)
        perm = rng.permutation(a.nnz)
        a_perm = COOTensor(a.coords[:, perm], a.values[perm], a.shape)
        b = random_coo((8, 5), nnz=20, seed=2)
        assert (signature_for(a, b, [(2, 0)], DESKTOP).key
                == signature_for(a_perm, b, [(2, 0)], DESKTOP).key)

    def test_changed_density_different_key(self):
        a_sparse = random_coo((10, 6, 8), nnz=20, seed=1)
        a_dense = random_coo((10, 6, 8), nnz=200, seed=1)
        b = random_coo((8, 5), nnz=20, seed=2)
        assert (signature_for(a_sparse, b, [(2, 0)], DESKTOP).key
                != signature_for(a_dense, b, [(2, 0)], DESKTOP).key)

    def test_machine_and_pairs_distinguish(self):
        a = random_coo((8, 8), nnz=30, seed=3)
        base = signature_for(a, a, [(0, 0)], DESKTOP)
        assert base.key != signature_for(a, a, [(0, 0)], SERVER).key
        assert base.key != signature_for(a, a, [(1, 1)], DESKTOP).key

    def test_overrides_distinguish(self):
        a = random_coo((8, 8), nnz=30, seed=3)
        auto = signature_for(a, a, [(0, 0)], DESKTOP)
        forced = signature_for(a, a, [(0, 0)], DESKTOP, accumulator="dense")
        tiled = signature_for(a, a, [(0, 0)], DESKTOP, tile_size=32)
        assert len({auto.key, forced.key, tiled.key}) == 3


class TestCachedPlan:
    def test_roundtrip_through_materialize(self):
        spec, plan = make_plan()
        cached = CachedPlan.from_plan(plan)
        revived = cached.materialize(spec)
        assert revived.accumulator == plan.accumulator
        assert (revived.tile_l, revived.tile_r) == (plan.tile_l, plan.tile_r)
        assert revived.machine_name == plan.machine_name
        assert revived.notes["source"] == "plan_cache"


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(maxsize=2)
        _, plan = make_plan()
        cache.put(sig(0), plan)
        cache.put(sig(1), plan)
        # Touch sig(0) so sig(1) becomes the LRU entry.
        assert cache.get(sig(0)) is not None
        cache.put(sig(2), plan)
        assert sig(1) not in cache
        assert sig(0) in cache and sig(2) in cache
        assert cache.evictions == 1

    def test_reinsert_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        _, plan = make_plan()
        cache.put(sig(0), plan)
        cache.put(sig(1), plan)
        cache.put(sig(0), plan)  # refresh, no growth
        assert len(cache) == 2
        cache.put(sig(2), plan)
        assert sig(1) not in cache

    def test_hit_and_miss_accounting(self):
        cache = PlanCache(maxsize=4)
        _, plan = make_plan()
        assert cache.get(sig(0)) is None
        cache.put(sig(0), plan)
        assert cache.get(sig(0)) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache(maxsize=8, path=path)
        _, plan = make_plan()
        cache.put(sig(0), plan)
        cache.put(sig(1), plan)
        cache.flush()

        revived = PlanCache(maxsize=8, path=path)
        assert len(revived) == 2
        assert revived.load_error is None
        entry = revived.get(sig(0))
        assert entry is not None
        assert entry == CachedPlan.from_plan(plan)

    def test_save_to_explicit_path(self, tmp_path):
        cache = PlanCache(maxsize=4)
        _, plan = make_plan()
        cache.put(sig(0), plan)
        target = cache.save(tmp_path / "explicit.json")
        assert json.loads(open(target).read())["version"] == 1

    def test_no_path_save_raises(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=4).save()

    def test_missing_file_starts_cold(self, tmp_path):
        cache = PlanCache(maxsize=4, path=tmp_path / "absent.json")
        assert len(cache) == 0
        assert cache.load_error is None

    def test_corrupted_file_recovers_cold(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{ this is not json")
        cache = PlanCache(maxsize=4, path=path)
        assert len(cache) == 0
        assert cache.load_error is not None
        # The cache must stay fully usable after the failed load.
        _, plan = make_plan()
        cache.put(sig(0), plan)
        assert cache.get(sig(0)) is not None
        cache.flush()
        assert PlanCache(maxsize=4, path=path).load_error is None

    def test_wrong_version_recovers_cold(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        cache = PlanCache(maxsize=4, path=path)
        assert len(cache) == 0
        assert "version" in cache.load_error

    def test_bad_entry_fields_recover_cold(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps(
            {"version": 1, "entries": [["k", {"bogus_field": 1}]]}
        ))
        cache = PlanCache(maxsize=4, path=path)
        assert len(cache) == 0
        assert cache.load_error is not None

    def test_load_respects_maxsize(self, tmp_path):
        path = tmp_path / "plans.json"
        big = PlanCache(maxsize=16, path=path)
        _, plan = make_plan()
        for n in range(6):
            big.put(sig(n), plan)
        big.flush()
        small = PlanCache(maxsize=3, path=path)
        assert len(small) == 3
        # The *most* recent entries survive the truncation.
        assert sig(5) in small and sig(3) in small
        assert sig(0) not in small


class TestWarmStart:
    """Cross-process plan reuse: one cache exports, another load()s."""

    def test_load_merges_under_live_entries(self, tmp_path):
        path = tmp_path / "shard_a.json"
        _, plan = make_plan()
        donor = PlanCache(maxsize=8)
        donor.put(sig(0), plan)
        donor.put(sig(1), plan)
        donor.save(path)

        fresh = PlanCache(maxsize=8)
        fresh.put(sig(1), plan)  # live entry must win over the file's
        live = fresh.get(sig(1))
        assert fresh.load(path) == 2
        assert len(fresh) == 2
        assert fresh.get(sig(0)) is not None
        assert fresh.get(sig(1)) == live

    def test_load_replace_drops_live_entries(self, tmp_path):
        path = tmp_path / "shard_a.json"
        _, plan = make_plan()
        donor = PlanCache(maxsize=8)
        donor.put(sig(0), plan)
        donor.save(path)

        fresh = PlanCache(maxsize=8)
        fresh.put(sig(5), plan)
        assert fresh.load(path, replace=True) == 1
        assert sig(0) in fresh and sig(5) not in fresh

    def test_load_corrupt_file_is_recorded_noop(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        _, plan = make_plan()
        cache = PlanCache(maxsize=4)
        cache.put(sig(0), plan)
        assert cache.load(path) == 0
        assert cache.load_error is not None
        assert sig(0) in cache

    def test_load_missing_file_is_recorded_noop(self, tmp_path):
        """load() of a path that does not exist must not raise: it
        returns 0, records the problem, and leaves the cache usable."""
        _, plan = make_plan()
        cache = PlanCache(maxsize=4)
        cache.put(sig(0), plan)
        assert cache.load(tmp_path / "never_written.json") == 0
        assert "FileNotFoundError" in cache.load_error
        assert sig(0) in cache
        cache.put(sig(1), plan)
        assert cache.get(sig(1)) is not None

    def test_load_version_mismatch_falls_back_cold(self, tmp_path):
        """A cache file from a future format version merges nothing —
        the running process keeps its live entries and keeps working."""
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 2, "entries": []}))
        _, plan = make_plan()
        cache = PlanCache(maxsize=4)
        cache.put(sig(0), plan)
        assert cache.load(path) == 0
        assert "version" in cache.load_error
        assert sig(0) in cache

    def test_load_failure_never_poisons_later_loads(self, tmp_path):
        """A failed load must not wedge the cache: a subsequent load of
        a good file still warms it."""
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        good = tmp_path / "good.json"
        _, plan = make_plan()
        donor = PlanCache(maxsize=8)
        donor.put(sig(3), plan)
        donor.save(good)

        cache = PlanCache(maxsize=4)
        assert cache.load(bad) == 0
        assert cache.load_error is not None
        assert cache.load(good) == 1
        assert sig(3) in cache

    def test_load_respects_maxsize(self, tmp_path):
        path = tmp_path / "big.json"
        _, plan = make_plan()
        donor = PlanCache(maxsize=16)
        for n in range(6):
            donor.put(sig(n), plan)
        donor.save(path)
        small = PlanCache(maxsize=3)
        small.load(path)
        assert len(small) == 3

    def test_runtime_warm_start_and_export(self, tmp_path):
        from repro.data.random_tensors import random_coo
        from repro.runtime import ContractionRuntime

        path = tmp_path / "plans.json"
        a = random_coo((24, 16), nnz=80, seed=41)
        b = random_coo((16, 20), nnz=80, seed=42)

        donor = ContractionRuntime(DESKTOP)
        donor.contract(a, b, [(1, 0)])
        assert donor.export_plans(path) == str(path)

        warmed = ContractionRuntime(DESKTOP)
        assert warmed.warm_start(path) == 1
        warmed.contract(a, b, [(1, 0)])
        assert warmed.counters.plan_cache_hits == 1
        assert warmed.counters.plan_cache_misses == 0


class TestPromotionEvictionInteraction:
    """Autotune promotions go through put_key; they must obey — not
    distort — the LRU contract."""

    def test_promotion_does_not_evict_hot_champion(self):
        # A full cache holds a hot champion (signature 0, freshly read)
        # and colder entries.  Promoting a challenger for a *different*
        # signature must displace the coldest entry, never the hot one.
        cache = PlanCache(maxsize=3)
        _, plan = make_plan()
        for n in range(3):
            cache.put(sig(n), plan)
        hot = sig(0)
        assert cache.get(hot) is not None  # refresh recency

        promoted = CachedPlan(
            accumulator="sparse", tile_l=16, tile_r=16,
            machine_name=DESKTOP.name)
        cache.put_key(sig(3).key, promoted)

        assert cache.peek_key(hot.key) is not None
        assert cache.peek_key(sig(1).key) is None  # coldest went
        assert cache.peek_key(sig(3).key) is promoted
        assert cache.evictions == 1

    def test_promotion_of_existing_key_refreshes_not_grows(self):
        cache = PlanCache(maxsize=2)
        _, plan = make_plan()
        cache.put(sig(0), plan)
        cache.put(sig(1), plan)
        promoted = CachedPlan(
            accumulator="dense", tile_l=32, tile_r=32,
            machine_name=DESKTOP.name)
        cache.put_key(sig(0).key, promoted)  # in-place champion swap
        assert cache.evictions == 0
        assert cache.peek_key(sig(0).key) is promoted
        # The swap refreshed sig(0): inserting a third entry now evicts
        # sig(1), the least recently touched.
        cache.put(sig(2), plan)
        assert cache.peek_key(sig(0).key) is promoted
        assert cache.peek_key(sig(1).key) is None

    def test_peek_key_does_not_refresh_recency(self):
        cache = PlanCache(maxsize=2)
        _, plan = make_plan()
        cache.put(sig(0), plan)
        cache.put(sig(1), plan)
        hits_before = cache.hits
        cache.peek_key(sig(0).key)  # a tuner snapshot, not a use
        assert cache.hits == hits_before
        cache.put(sig(2), plan)  # evicts sig(0): peek kept it cold
        assert cache.peek_key(sig(0).key) is None
        assert cache.peek_key(sig(1).key) is not None
