"""Tests for the adaptive contraction runtime."""
