"""Thread-safety regression tests for the state the serve pool shares.

The serving layer points many worker threads at ONE ContractionRuntime,
so the plan cache, the operand/table cache, counter aggregation and the
per-call record path must hold up under concurrent mutation.  These
tests hammer each from a thread pool and assert exact, loss-free
outcomes — before the internal locks existed they failed with lost
updates, corrupted LRU state, or interleaved JSON writes.
"""

import json
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro import contract
from repro.analysis.counters import Counters
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP
from repro.runtime import ContractionRuntime, PlanCache
from repro.runtime.plan_cache import CachedPlan

N_THREADS = 8


def run_threads(target, n=N_THREADS):
    threads = [threading.Thread(target=target, args=(k,)) for k in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def sig(key: str) -> SimpleNamespace:
    # PlanCache only reads `.key` off the signature object.
    return SimpleNamespace(key=key)


def make_plan() -> CachedPlan:
    return CachedPlan(
        accumulator="sparse", tile_l=64, tile_r=64,
        machine_name=DESKTOP.name,
    )


class TestPlanCacheConcurrency:
    def test_put_get_hammer_keeps_exact_tallies(self):
        cache = PlanCache(maxsize=1024)
        per_thread = 50

        def worker(k):
            for i in range(per_thread):
                s = sig(f"t{k}/p{i}")
                cache.put(s, make_plan())
                assert cache.get(s) is not None

        run_threads(worker)
        stats = cache.stats()
        assert stats["entries"] == N_THREADS * per_thread
        assert stats["hits"] == N_THREADS * per_thread
        assert stats["misses"] == 0

    def test_concurrent_eviction_respects_maxsize(self):
        cache = PlanCache(maxsize=16)

        def worker(k):
            for i in range(100):
                s = sig(f"t{k}/p{i}")
                cache.put(s, make_plan())
                cache.get(s)
                assert len(cache) <= 16

        run_threads(worker)
        assert len(cache) <= 16

    def test_concurrent_saves_produce_valid_json(self, tmp_path):
        """Interleaved save() calls must never corrupt the file — the
        whole tmp-write + rename is one critical section."""
        path = tmp_path / "plans.json"
        cache = PlanCache(maxsize=64, path=str(path))
        for i in range(20):
            cache.put(sig(f"seed/{i}"), make_plan())

        def worker(k):
            for i in range(10):
                cache.put(sig(f"t{k}/p{i}"), make_plan())
                cache.save()

        run_threads(worker)
        payload = json.loads(path.read_text())
        reloaded = PlanCache(maxsize=64, path=str(path))
        assert reloaded.load_error is None
        assert len(reloaded) > 0
        assert payload["entries"]


class TestCountersConcurrency:
    def test_merge_from_threads_loses_nothing(self):
        total = Counters()
        per_thread = 200

        def worker(k):
            for _ in range(per_thread):
                local = Counters()
                local.hash_queries += 3
                local.data_volume += 2
                total.merge(local)

        run_threads(worker)
        assert total.hash_queries == 3 * N_THREADS * per_thread
        assert total.data_volume == 2 * N_THREADS * per_thread

    def test_snapshot_during_merges_is_consistent(self):
        total = Counters()
        stop = threading.Event()
        seen_bad = []

        def merger(_):
            while not stop.is_set():
                local = Counters()
                # Equal bumps: every consistent snapshot has equal tallies.
                local.hash_queries += 1
                local.data_volume += 1
                total.merge(local)

        readers = [threading.Thread(target=merger, args=(k,))
                   for k in range(4)]
        for t in readers:
            t.start()
        for _ in range(200):
            snap = total.snapshot()
            if snap["hash_queries"] != snap["data_volume"]:
                seen_bad.append(snap)
        stop.set()
        for t in readers:
            t.join()
        assert not seen_bad


class TestSharedRuntimeConcurrency:
    @pytest.fixture
    def problems(self):
        out = []
        for k in range(3):
            a = random_coo((20, 16 + 2 * k), nnz=60, seed=10 + 2 * k)
            b = random_coo((16 + 2 * k, 12), nnz=50, seed=11 + 2 * k)
            out.append((a, b, ((1, 0),)))
        return out

    def test_concurrent_contracts_are_correct_and_recorded(self, problems):
        runtime = ContractionRuntime(machine=DESKTOP, calibrate=False)
        expected = [contract(a, b, list(p)) for a, b, p in problems]
        repeats = 6
        failures = []

        def worker(k):
            a, b, p = problems[k % len(problems)]
            want = expected[k % len(problems)]
            for _ in range(repeats):
                out, record = runtime.contract(a, b, p, return_record=True)
                # return_record hands back THIS call's record — under
                # concurrency, indexing runtime.records would not.
                if record.output_nnz != want.nnz:
                    failures.append("wrong record")
                if not (
                    np.array_equal(out.coords, want.coords)
                    and np.array_equal(out.values, want.values)
                ):
                    failures.append("wrong result")

        run_threads(worker, n=6)
        assert not failures
        assert len(runtime.records) == 6 * repeats
