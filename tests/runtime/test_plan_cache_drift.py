"""PlanCache structural drift: reuse within tolerance, re-price beyond.

A streaming workload mutates operands between calls, so the exact
signature key (which embeds nnz) almost never repeats.  The cache keeps
a masked structure index so a lookup at a drifted nnz can reuse the
same structure's plan within ``drift_rtol`` — and deliberately miss
beyond it, forcing a re-price through Algorithm 7.
"""

import pytest

from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.machine.specs import DESKTOP
from repro.runtime.plan_cache import PlanCache
from repro.runtime.signature import ProblemSignature, _machine_token

SPEC = ContractionSpec((64, 16), (16, 32), [(1, 0)])


def sig(nnz_l, nnz_r=100):
    return ProblemSignature(
        left_shape=(64, 16), right_shape=(16, 32), pairs=((1, 0),),
        nnz_l=nnz_l, nnz_r=nnz_r, machine=_machine_token(DESKTOP),
    )


def plan_for(nnz_l, nnz_r=100):
    return choose_plan(SPEC, nnz_l, nnz_r, DESKTOP)


class TestDriftReuse:
    def test_exact_hit_unaffected(self):
        cache = PlanCache()
        cache.put(sig(500), plan_for(500))
        assert cache.get(sig(500)) is not None
        assert cache.drift_hits == 0

    def test_reuse_within_tolerance(self):
        cache = PlanCache(drift_rtol=0.25)
        cache.put(sig(500), plan_for(500))
        hit = cache.get(sig(550))  # 10% drift
        assert hit is not None
        assert cache.drift_hits == 1
        # The entry is re-keyed under the live signature: the next
        # lookup at the same nnz is an exact hit.
        before = cache.drift_hits
        assert cache.get(sig(550)) is not None
        assert cache.drift_hits == before

    def test_reprice_beyond_tolerance(self):
        cache = PlanCache(drift_rtol=0.25)
        cache.put(sig(500), plan_for(500))
        assert cache.get(sig(900)) is None  # 80% drift: miss
        assert cache.drift_repriced == 1
        assert cache.drift_hits == 0

    def test_both_operands_checked(self):
        cache = PlanCache(drift_rtol=0.25)
        cache.put(sig(500, 100), plan_for(500, 100))
        # Left within tolerance, right far out: must miss.
        assert cache.get(sig(510, 400)) is None
        assert cache.drift_repriced == 1

    def test_disabled_when_none(self):
        cache = PlanCache(drift_rtol=None)
        cache.put(sig(500), plan_for(500))
        assert cache.get(sig(505)) is None
        assert cache.drift_hits == 0 and cache.drift_repriced == 0

    def test_different_structure_never_reused(self):
        cache = PlanCache(drift_rtol=10.0)
        cache.put(sig(500), plan_for(500))
        other = ProblemSignature(
            left_shape=(64, 16), right_shape=(16, 32), pairs=((1, 0),),
            nnz_l=500, nnz_r=100, machine=_machine_token(DESKTOP),
            accumulator="dense",
        )
        assert cache.get(other) is None

    def test_bad_rtol_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(drift_rtol=-0.1)


class TestDriftAfterPersistence:
    def test_warm_started_entries_drift_reuse(self, tmp_path):
        path = tmp_path / "plans.json"
        hot = PlanCache(path=path)
        hot.put(sig(500), plan_for(500))
        hot.flush()

        cold = PlanCache(path=path)
        assert len(cold) == 1
        assert cold.get(sig(560)) is not None  # 12% drift on warm entry
        assert cold.drift_hits == 1


class TestInvalidationInteraction:
    def test_invalidated_entry_not_drift_reusable(self):
        cache = PlanCache(drift_rtol=0.25)
        cache.put(sig(500), plan_for(500))
        assert cache.invalidate(sig(500)) is True
        assert cache.get(sig(510)) is None
        assert cache.drift_hits == 0

    def test_invalidate_where_drops_structure_index(self):
        cache = PlanCache(drift_rtol=0.25)
        cache.put(sig(500), plan_for(500))
        assert cache.invalidate_where(lambda key: "L64x16" in key) == 1
        assert cache.get(sig(505)) is None
        assert cache.stats()["invalidated"] == 1

    def test_eviction_drops_structure_index(self):
        cache = PlanCache(maxsize=1, drift_rtol=0.25)
        cache.put(sig(500), plan_for(500))
        other = ProblemSignature(
            left_shape=(128, 16), right_shape=(16, 32), pairs=((1, 0),),
            nnz_l=700, nnz_r=100, machine=_machine_token(DESKTOP),
        )
        spec = ContractionSpec((128, 16), (16, 32), [(1, 0)])
        cache.put(other, choose_plan(spec, 700, 100, DESKTOP))
        assert cache.evictions == 1
        assert cache.get(sig(510)) is None  # evicted entry can't drift-hit
