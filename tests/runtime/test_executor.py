"""Runtime executor tests: correctness under reuse, counters, batching."""

import numpy as np
import pytest

from repro import COOTensor, contract
from repro.analysis.counters import Counters
from repro.core.model import choose_plan
from repro.core.plan import ContractionSpec
from repro.core.tiled_co import build_tiled_tables_pair, tiled_co_contract
from repro.data.random_tensors import random_coo
from repro.machine.specs import DESKTOP, MINIATURE
from repro.runtime import BatchExecutor, BatchItem, ContractionRuntime


@pytest.fixture
def tensors():
    a = random_coo((30, 20, 10), nnz=300, seed=5)
    b = random_coo((10, 25), nnz=120, seed=6)
    return a, b, [(2, 0)]


class TestRuntimeContract:
    def test_matches_plain_contract(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        expected = contract(a, b, pairs)
        for _ in range(3):  # cold, then twice warm
            assert rt.contract(a, b, pairs).allclose(expected)

    def test_counters_record_hits_and_builds(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        rt.contract(a, b, pairs)
        assert rt.counters.plan_cache_misses == 1
        assert rt.counters.table_builds == 2
        rt.contract(a, b, pairs)
        assert rt.counters.plan_cache_hits == 1
        assert rt.counters.table_reuse_hits == 2

    def test_per_call_counters_merge(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        mine = Counters()
        rt.contract(a, b, pairs, counters=mine)
        assert mine.plan_cache_misses == 1
        assert mine.accum_updates > 0

    def test_warm_call_skips_planning_and_construction(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        rt.contract(a, b, pairs)
        _, stats = rt.contract(a, b, pairs, return_stats=True)
        # Reused tables: the construction phase is (measured) epsilon,
        # and linearization was skipped outright.
        assert stats.phase_seconds["build_tables"] < 1e-3
        assert stats.phase_seconds["linearize"] == 0.0
        assert rt.records[-1].plan_source == "cache"
        assert rt.records[-1].tables_reused == (True, True)
        assert rt.records[-1].seconds_saved > 0

    def test_return_stats_shape(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        out, stats = rt.contract(a, b, pairs, return_stats=True)
        assert stats.output_nnz == out.nnz
        assert stats.plan is not None

    def test_distinct_problems_get_distinct_plans(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        rt.contract(a, b, pairs)
        c = random_coo((30, 20, 10), nnz=900, seed=9)  # density changed
        rt.contract(c, b, pairs)
        assert rt.counters.plan_cache_misses == 2
        assert rt.counters.plan_cache_hits == 0

    def test_operand_eviction_keeps_results_correct(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime(operand_cache_size=1)
        expected = contract(a, b, pairs)
        for _ in range(2):
            assert rt.contract(a, b, pairs).allclose(expected)

    def test_clear_operand_cache(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime()
        rt.contract(a, b, pairs)
        rt.clear_operand_cache()
        rt.contract(a, b, pairs)
        assert rt.counters.table_builds == 4  # rebuilt after the clear
        assert rt.counters.plan_cache_hits == 1  # but the plan survived

    def test_value_change_same_plan_different_result(self, tensors):
        """Same structure, new values: plan cache hits, output tracks
        the new values (the cache must never memoize results)."""
        a, b, pairs = tensors
        rt = ContractionRuntime()
        rt.contract(a, b, pairs)
        a2 = COOTensor(a.coords, a.values * 2.0, a.shape)
        out = rt.contract(a2, b, pairs)
        assert rt.counters.plan_cache_hits == 1
        assert out.allclose(contract(a, b, pairs).scaled(2.0))

    def test_machine_respected(self, tensors):
        a, b, pairs = tensors
        rt = ContractionRuntime(machine=MINIATURE)
        _, stats = rt.contract(a, b, pairs, return_stats=True)
        assert stats.plan.machine_name == MINIATURE.name


class TestPlanInjection:
    """The core ``contract(plan=...)`` hook the runtime layers on."""

    def test_precomputed_plan_used(self, tensors):
        a, b, pairs = tensors
        spec = ContractionSpec(a.shape, b.shape, pairs)
        lop = spec.linearize_left(a).sum_duplicates()
        rop = spec.linearize_right(b).sum_duplicates()
        plan = choose_plan(spec, lop.nnz, rop.nnz, DESKTOP)
        out, stats = contract(a, b, pairs, plan=plan, return_stats=True)
        assert stats.plan is plan
        assert out.allclose(contract(a, b, pairs))

    def test_plan_conflicts_with_overrides(self, tensors):
        a, b, pairs = tensors
        spec = ContractionSpec(a.shape, b.shape, pairs)
        plan = choose_plan(spec, a.nnz, b.nnz, DESKTOP)
        with pytest.raises(ValueError, match="mutually exclusive"):
            contract(a, b, pairs, plan=plan, tile_size=8)

    def test_mismatched_plan_rejected(self, tensors):
        a, b, pairs = tensors
        other_spec = ContractionSpec((4, 4), (4, 4), [(1, 0)])
        plan = choose_plan(other_spec, 4, 4, DESKTOP)
        with pytest.raises(ValueError, match="plan was made for"):
            contract(a, b, pairs, plan=plan)


class TestPrebuiltTables:
    """The kernel-level ``tables=`` injection."""

    def test_prebuilt_tables_give_same_answer(self, tensors):
        a, b, pairs = tensors
        spec = ContractionSpec(a.shape, b.shape, pairs)
        lop = spec.linearize_left(a).sum_duplicates()
        rop = spec.linearize_right(b).sum_duplicates()
        plan = choose_plan(spec, lop.nnz, rop.nnz, DESKTOP)
        hl, hr = build_tiled_tables_pair(lop, rop, plan.tile_l, plan.tile_r)
        li1, ri1, v1, _ = tiled_co_contract(lop, rop, plan)
        li2, ri2, v2, stats = tiled_co_contract(
            lop, rop, plan, tables=(hl, hr))
        dense1 = np.zeros((spec.L, spec.R))
        dense2 = np.zeros((spec.L, spec.R))
        np.add.at(dense1, (li1, ri1), v1)
        np.add.at(dense2, (li2, ri2), v2)
        np.testing.assert_allclose(dense1, dense2)

    def test_wrong_tile_rejected(self, tensors):
        a, b, pairs = tensors
        spec = ContractionSpec(a.shape, b.shape, pairs)
        lop = spec.linearize_left(a).sum_duplicates()
        rop = spec.linearize_right(b).sum_duplicates()
        plan = choose_plan(spec, lop.nnz, rop.nnz, DESKTOP)
        bad_tile = plan.tile_l * 2
        hl, hr = build_tiled_tables_pair(lop, rop, bad_tile, bad_tile)
        with pytest.raises(ValueError, match="prebuilt tables"):
            tiled_co_contract(lop, rop, plan, tables=(hl, hr))


class TestBatchExecutor:
    def test_shared_operand_reuses_tables(self):
        """The DLPNO shape: one operand feeds consecutive steps."""
        shared = random_coo((18, 14, 12), nnz=250, seed=1)
        other1 = random_coo((12, 16), nnz=100, seed=2)
        other2 = random_coo((12, 9), nnz=80, seed=3)
        ex = BatchExecutor()
        report = ex.run([
            BatchItem(shared, other1, ((2, 0),), name="first"),
            BatchItem(shared, other2, ((2, 0),), name="second"),
        ])
        # Step two reuses `shared`'s left tables (same role, same tile
        # unless the plans diverge on tile size).
        assert report.metrics["table_reuse_hits"] >= 1
        assert report.records[1].tables_reused[0] is True
        for out, (l, r, p) in zip(
            report.outputs,
            [(shared, other1, [(2, 0)]), (shared, other2, [(2, 0)])],
        ):
            assert out.allclose(contract(l, r, p))

    def test_tuple_items_coerced(self):
        a = random_coo((10, 8), nnz=40, seed=4)
        b = random_coo((8, 6), nnz=30, seed=5)
        report = BatchExecutor().run([(a, b, [(1, 0)])])
        assert report.records[0].name == "step0"
        assert report.outputs[0].allclose(contract(a, b, [(1, 0)]))

    def test_summary_mentions_cache_metrics(self):
        a = random_coo((10, 8), nnz=40, seed=4)
        b = random_coo((8, 6), nnz=30, seed=5)
        report = BatchExecutor().run([(a, b, [(1, 0)]), (a, b, [(1, 0)])])
        text = report.summary()
        assert "plan cache: 1 hits / 1 misses" in text
        assert "hit rate 50%" in text
        assert "estimated speedup" in text

    def test_metrics_speedup_accumulates(self):
        a = random_coo((24, 18, 9), nnz=400, seed=8)
        b = random_coo((9, 21), nnz=150, seed=9)
        rt = ContractionRuntime()
        ex = BatchExecutor(rt)
        ex.run([(a, b, [(2, 0)])] * 4)
        m = rt.metrics()
        assert m["calls"] == 4
        assert m["plan_hit_rate"] == 0.75
        assert m["table_reuse_rate"] == 0.75
        assert m["estimated_speedup"] > 1.0
